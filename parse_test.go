// Tests of the CLI-style name parsers: case-insensitive matching and
// error messages that enumerate the valid names.
package sparkxd_test

import (
	"encoding/json"
	"strings"
	"testing"

	"sparkxd"
)

func TestParseDatasetCaseInsensitive(t *testing.T) {
	cases := []struct {
		in   string
		want sparkxd.Dataset
	}{
		{"mnist", sparkxd.MNIST},
		{"MNIST", sparkxd.MNIST},
		{"MnIsT", sparkxd.MNIST},
		{" mnist ", sparkxd.MNIST},
		{"fashion", sparkxd.Fashion},
		{"Fashion", sparkxd.Fashion},
		{"FASHION", sparkxd.Fashion},
	}
	for _, tc := range cases {
		got, err := sparkxd.ParseDataset(tc.in)
		if err != nil {
			t.Errorf("ParseDataset(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseDataset(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseDatasetBadInputEnumeratesNames(t *testing.T) {
	_, err := sparkxd.ParseDataset("imagenet")
	if err == nil {
		t.Fatal("ParseDataset(imagenet) must fail")
	}
	for _, name := range sparkxd.DatasetNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name valid dataset %q", err, name)
		}
	}
	if !strings.Contains(err.Error(), `"imagenet"`) {
		t.Errorf("error %q does not echo the bad input", err)
	}
}

func TestParseErrorModelCaseInsensitive(t *testing.T) {
	cases := []struct {
		in   string
		want sparkxd.ErrorModel
	}{
		{"uniform", sparkxd.ErrorModelUniform},
		{"Uniform", sparkxd.ErrorModelUniform},
		{"BITLINE", sparkxd.ErrorModelBitline},
		{"Wordline", sparkxd.ErrorModelWordline},
		{"Data-Dependent", sparkxd.ErrorModelDataDependent},
		{"data", sparkxd.ErrorModelDataDependent},
	}
	for _, tc := range cases {
		got, err := sparkxd.ParseErrorModel(tc.in)
		if err != nil {
			t.Errorf("ParseErrorModel(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseErrorModel(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseErrorModelBadInputEnumeratesNames(t *testing.T) {
	_, err := sparkxd.ParseErrorModel("gaussian")
	if err == nil {
		t.Fatal("ParseErrorModel(gaussian) must fail")
	}
	for _, name := range sparkxd.ErrorModelNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name valid model %q", err, name)
		}
	}
}

func TestParsePolicyCaseInsensitive(t *testing.T) {
	for in, want := range map[string]sparkxd.Policy{
		"baseline": sparkxd.PolicyBaseline,
		"Baseline": sparkxd.PolicyBaseline,
		"SPARKXD":  sparkxd.PolicySparkXD,
		"SparkXD":  sparkxd.PolicySparkXD,
		"sparkxd":  sparkxd.PolicySparkXD,
	} {
		got, err := sparkxd.ParsePolicy(in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", in, got, want)
		}
	}
	_, err := sparkxd.ParsePolicy("round-robin")
	if err == nil {
		t.Fatal("ParsePolicy(round-robin) must fail")
	}
	for _, name := range sparkxd.PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name valid policy %q", err, name)
		}
	}
}

func TestParseQuantization(t *testing.T) {
	for in, want := range map[string]sparkxd.Quantization{
		"fp32": sparkxd.FP32,
		"FP16": sparkxd.FP16,
		"q8.8": sparkxd.Q88,
		"Q88":  sparkxd.Q88,
	} {
		got, err := sparkxd.ParseQuantization(in)
		if err != nil {
			t.Errorf("ParseQuantization(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseQuantization(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := sparkxd.ParseQuantization("int4"); err == nil {
		t.Error("ParseQuantization(int4) must fail")
	}
}

// ErrorModel must marshal by name on JSON surfaces (job specs) and parse
// back case-insensitively.
func TestErrorModelJSONRoundTrip(t *testing.T) {
	b, err := json.Marshal(sparkxd.ErrorModelDataDependent)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"data-dependent"` {
		t.Errorf("marshal = %s, want \"data-dependent\"", b)
	}
	var m sparkxd.ErrorModel
	if err := json.Unmarshal([]byte(`"Bitline"`), &m); err != nil {
		t.Fatal(err)
	}
	if m != sparkxd.ErrorModelBitline {
		t.Errorf("unmarshal = %v, want bitline", m)
	}
	if err := json.Unmarshal([]byte(`"nope"`), &m); err == nil {
		t.Error("unmarshal of unknown model must fail")
	}
}
