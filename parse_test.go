// Tests of the CLI-style name parsers: case-insensitive matching and
// error messages that enumerate the valid names.
package sparkxd_test

import (
	"encoding/json"
	"strings"
	"testing"

	"sparkxd"
)

func TestParseDatasetCaseInsensitive(t *testing.T) {
	cases := []struct {
		in   string
		want sparkxd.Dataset
	}{
		{"mnist", sparkxd.MNIST},
		{"MNIST", sparkxd.MNIST},
		{"MnIsT", sparkxd.MNIST},
		{" mnist ", sparkxd.MNIST},
		{"fashion", sparkxd.Fashion},
		{"Fashion", sparkxd.Fashion},
		{"FASHION", sparkxd.Fashion},
	}
	for _, tc := range cases {
		got, err := sparkxd.ParseDataset(tc.in)
		if err != nil {
			t.Errorf("ParseDataset(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseDataset(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseDatasetBadInputEnumeratesNames(t *testing.T) {
	_, err := sparkxd.ParseDataset("imagenet")
	if err == nil {
		t.Fatal("ParseDataset(imagenet) must fail")
	}
	for _, name := range sparkxd.DatasetNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name valid dataset %q", err, name)
		}
	}
	if !strings.Contains(err.Error(), `"imagenet"`) {
		t.Errorf("error %q does not echo the bad input", err)
	}
}

func TestParseErrorModelCaseInsensitive(t *testing.T) {
	cases := []struct {
		in   string
		want sparkxd.ErrorModel
	}{
		{"uniform", sparkxd.ErrorModelUniform},
		{"Uniform", sparkxd.ErrorModelUniform},
		{"BITLINE", sparkxd.ErrorModelBitline},
		{"Wordline", sparkxd.ErrorModelWordline},
		{"Data-Dependent", sparkxd.ErrorModelDataDependent},
		{"data", sparkxd.ErrorModelDataDependent},
	}
	for _, tc := range cases {
		got, err := sparkxd.ParseErrorModel(tc.in)
		if err != nil {
			t.Errorf("ParseErrorModel(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseErrorModel(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseErrorModelBadInputEnumeratesNames(t *testing.T) {
	_, err := sparkxd.ParseErrorModel("gaussian")
	if err == nil {
		t.Fatal("ParseErrorModel(gaussian) must fail")
	}
	for _, name := range sparkxd.ErrorModelNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name valid model %q", err, name)
		}
	}
}

func TestParsePolicyCaseInsensitive(t *testing.T) {
	for in, want := range map[string]sparkxd.Policy{
		"baseline": sparkxd.PolicyBaseline,
		"Baseline": sparkxd.PolicyBaseline,
		"SPARKXD":  sparkxd.PolicySparkXD,
		"SparkXD":  sparkxd.PolicySparkXD,
		"sparkxd":  sparkxd.PolicySparkXD,
	} {
		got, err := sparkxd.ParsePolicy(in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", in, got, want)
		}
	}
	_, err := sparkxd.ParsePolicy("round-robin")
	if err == nil {
		t.Fatal("ParsePolicy(round-robin) must fail")
	}
	for _, name := range sparkxd.PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name valid policy %q", err, name)
		}
	}
}

func TestParseQuantization(t *testing.T) {
	for in, want := range map[string]sparkxd.Quantization{
		"fp32": sparkxd.FP32,
		"FP16": sparkxd.FP16,
		"q8.8": sparkxd.Q88,
		"Q88":  sparkxd.Q88,
	} {
		got, err := sparkxd.ParseQuantization(in)
		if err != nil {
			t.Errorf("ParseQuantization(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseQuantization(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := sparkxd.ParseQuantization("int4"); err == nil {
		t.Error("ParseQuantization(int4) must fail")
	}
}

// ErrorModel must marshal by name on JSON surfaces (job specs) and parse
// back case-insensitively.
func TestErrorModelJSONRoundTrip(t *testing.T) {
	b, err := json.Marshal(sparkxd.ErrorModelDataDependent)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"data-dependent"` {
		t.Errorf("marshal = %s, want \"data-dependent\"", b)
	}
	var m sparkxd.ErrorModel
	if err := json.Unmarshal([]byte(`"Bitline"`), &m); err != nil {
		t.Fatal(err)
	}
	if m != sparkxd.ErrorModelBitline {
		t.Errorf("unmarshal = %v, want bitline", m)
	}
	if err := json.Unmarshal([]byte(`"nope"`), &m); err == nil {
		t.Error("unmarshal of unknown model must fail")
	}
}

func TestParseEncoder(t *testing.T) {
	cases := []struct {
		in   string
		want sparkxd.Encoder
	}{
		{"rate", sparkxd.EncoderRate},
		{"RATE", sparkxd.EncoderRate},
		{" Rate ", sparkxd.EncoderRate},
		{"poisson", sparkxd.EncoderRate},
		{"rate-poisson", sparkxd.EncoderRate},
		{"rate-det", sparkxd.EncoderRateDet},
		{"deterministic", sparkxd.EncoderRateDet},
		{"rate-deterministic", sparkxd.EncoderRateDet},
		{"ttfs", sparkxd.EncoderTTFS},
		{"TTFS", sparkxd.EncoderTTFS},
		{"time-to-first-spike", sparkxd.EncoderTTFS},
		{"rank-order", sparkxd.EncoderRankOrder},
		{"rankorder", sparkxd.EncoderRankOrder},
		{"phase", sparkxd.EncoderPhase},
		{"burst", sparkxd.EncoderBurst},
	}
	for _, tc := range cases {
		got, err := sparkxd.ParseEncoder(tc.in)
		if err != nil {
			t.Errorf("ParseEncoder(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseEncoder(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// Unknown encoder names fail with an error that enumerates every valid
// name, so CLI users can self-correct (PR 4 parser convention).
func TestParseEncoderUnknownEnumeratesNames(t *testing.T) {
	_, err := sparkxd.ParseEncoder("morse")
	if err == nil {
		t.Fatal("ParseEncoder(morse) must fail")
	}
	for _, name := range sparkxd.EncoderNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention valid name %q", err, name)
		}
	}
}

func TestParseBitwidth(t *testing.T) {
	cases := []struct {
		in   int
		want sparkxd.Quantization
	}{
		{16, sparkxd.FP16},
		{32, sparkxd.FP32},
	}
	for _, tc := range cases {
		got, err := sparkxd.ParseBitwidth(tc.in)
		if err != nil {
			t.Errorf("ParseBitwidth(%d): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBitwidth(%d) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []int{0, 8, 24, 64, -16} {
		if _, err := sparkxd.ParseBitwidth(bad); err == nil {
			t.Errorf("ParseBitwidth(%d) must fail", bad)
		} else if !strings.Contains(err.Error(), "16") || !strings.Contains(err.Error(), "32") {
			t.Errorf("ParseBitwidth(%d) error %q does not enumerate valid widths", bad, err)
		}
	}
}

func TestValidatePruneLevel(t *testing.T) {
	for _, ok := range []float64{0, 0.25, 0.5, 0.999} {
		if err := sparkxd.ValidatePruneLevel(ok); err != nil {
			t.Errorf("ValidatePruneLevel(%v): %v", ok, err)
		}
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if err := sparkxd.ValidatePruneLevel(bad); err == nil {
			t.Errorf("ValidatePruneLevel(%v) must fail", bad)
		}
	}
}

// ErrorModelName bridges the two error-model vocabularies: spec names
// ("uniform") and scenario-key names ("model0-uniform") both resolve to
// the same ErrorModel, and ScenarioName round-trips every model.
func TestErrorModelNameRoundTrip(t *testing.T) {
	models := []sparkxd.ErrorModel{
		sparkxd.ErrorModelUniform,
		sparkxd.ErrorModelBitline,
		sparkxd.ErrorModelWordline,
		sparkxd.ErrorModelDataDependent,
	}
	for _, m := range models {
		name, err := m.ScenarioName()
		if err != nil {
			t.Errorf("%v.ScenarioName(): %v", m, err)
			continue
		}
		back, err := name.Model()
		if err != nil {
			t.Errorf("%q.Model(): %v", name, err)
			continue
		}
		if back != m {
			t.Errorf("round trip %v -> %q -> %v", m, name, back)
		}
		// The spec-name spelling parses too.
		spec, err := sparkxd.ErrorModelName(m.String()).Model()
		if err != nil || spec != m {
			t.Errorf("spec spelling %q: got %v, %v", m.String(), spec, err)
		}
	}
	if _, err := sparkxd.ErrorModelName("model9-quantum").Model(); err == nil {
		t.Error("unknown scenario name must fail")
	}
}
