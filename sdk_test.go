// Tests of the public SDK surface: artifact JSON round-trips, context
// cancellation, sentinel errors, and end-to-end equivalence with the
// legacy core.Framework.Run composition the SDK absorbed.
package sparkxd_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"sparkxd"
	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
	"sparkxd/internal/voltscale"
)

// tinySystem returns a seconds-fast System plus the option set that
// built it.
func tinySystem(t testing.TB, extra ...sparkxd.Option) *sparkxd.System {
	t.Helper()
	opts := append([]sparkxd.Option{
		sparkxd.WithNeurons(50),
		sparkxd.WithSampleBudget(80, 40),
		sparkxd.WithBaseEpochs(1),
		sparkxd.WithBERSchedule(1e-5, 1e-3),
	}, extra...)
	sys, err := sparkxd.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewRejectsBadOptions(t *testing.T) {
	cases := []struct {
		name string
		opts []sparkxd.Option
	}{
		{"zero neurons", []sparkxd.Option{sparkxd.WithNeurons(0)}},
		{"empty schedule", []sparkxd.Option{sparkxd.WithBERSchedule()}},
		{"non-increasing schedule", []sparkxd.Option{sparkxd.WithBERSchedule(1e-4, 1e-4)}},
		{"negative bound", []sparkxd.Option{sparkxd.WithAccuracyBound(-1)}},
		{"bad dataset", []sparkxd.Option{sparkxd.WithDataset(sparkxd.Dataset(99))}},
		{"bad voltage", []sparkxd.Option{sparkxd.WithVoltage(0)}},
		{"bad budget", []sparkxd.Option{sparkxd.WithSampleBudget(0, 10)}},
	}
	for _, tc := range cases {
		if _, err := sparkxd.New(tc.opts...); err == nil {
			t.Errorf("%s: New accepted invalid options", tc.name)
		}
	}
}

// The staged pipeline must reproduce the legacy monolithic
// core.Framework.Run composition bit for bit. The legacy sequence is
// reimplemented here verbatim from the kernel primitives (it was deleted
// from internal/core when the SDK absorbed it); if the SDK ever drifts
// in seed derivation or stage order, this test catches it.
func TestPipelineMatchesLegacyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline skipped in -short mode")
	}
	const (
		neurons    = 50
		trainN     = 80
		testN      = 40
		baseEpochs = 1
		seed       = uint64(1)
		trainSeed  = uint64(7)
		voltage    = voltscale.V1025
	)
	rates := []float64{1e-5, 1e-3}

	// --- legacy composition (the deleted core.Framework.Run) ---
	f := core.NewFramework()
	dcfg := dataset.DefaultConfig(dataset.MNISTLike)
	dcfg.Train, dcfg.Test = trainN, testN
	train, test, err := dataset.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := snn.New(snn.DefaultConfig(neurons), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(seed).Derive("run")
	for e := 0; e < baseEpochs; e++ {
		baseline.TrainEpoch(train, root.DeriveIndex("base-epoch", e))
	}
	baseline.AssignLabels(train, root.Derive("base-assign"))
	ctx := context.Background()
	tcfg := core.TrainConfig{Rates: rates, EpochsPerRate: 1, AccBound: 0.01, Seed: trainSeed}
	tr, err := f.ImproveErrorTolerance(ctx, baseline, train, test, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	berTh, curve, err := f.AnalyzeErrorTolerance(ctx, tr.Model, test, rates,
		tr.BaselineAcc, tcfg.AccBound, trainSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	layout, profile, err := f.MapModel(tr.Model, voltage, berTh)
	if err != nil {
		t.Fatal(err)
	}
	baseLayout, err := f.LayoutFor(baseline, nil)
	if err != nil {
		t.Fatal(err)
	}
	improvedAcc := f.EvaluateUnderErrors(tr.Model, test, layout, profile, trainSeed+2, trainSeed+3)
	eBase, err := f.EvaluateEnergy(baseLayout, voltscale.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	eSpark, err := f.EvaluateEnergy(layout, voltage)
	if err != nil {
		t.Fatal(err)
	}
	eSparkNominal, err := f.EvaluateEnergy(layout, voltscale.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	legacySpeedup := eBase.Stats.TotalNs / eSparkNominal.Stats.TotalNs

	// --- SDK pipeline ---
	sys := tinySystem(t)
	res, err := sys.Pipeline().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if res.Improved.BaselineAcc != tr.BaselineAcc {
		t.Errorf("baseline acc: SDK %v, legacy %v", res.Improved.BaselineAcc, tr.BaselineAcc)
	}
	if res.Improved.BERth != tr.BERth {
		t.Errorf("provisional BERth: SDK %v, legacy %v", res.Improved.BERth, tr.BERth)
	}
	if res.Tolerance.BERth != berTh {
		t.Errorf("BERth: SDK %v, legacy %v", res.Tolerance.BERth, berTh)
	}
	if !reflect.DeepEqual(res.Tolerance.Curve, curve) {
		t.Errorf("tolerance curve diverged: SDK %v, legacy %v", res.Tolerance.Curve, curve)
	}
	if res.Evaluation.Accuracy != improvedAcc {
		t.Errorf("improved acc: SDK %v, legacy %v", res.Evaluation.Accuracy, improvedAcc)
	}
	if res.Energy.Baseline.TotalMJ != eBase.TotalMJ() {
		t.Errorf("baseline energy: SDK %v, legacy %v", res.Energy.Baseline.TotalMJ, eBase.TotalMJ())
	}
	if res.Energy.SparkXD.TotalMJ != eSpark.TotalMJ() {
		t.Errorf("sparkxd energy: SDK %v, legacy %v", res.Energy.SparkXD.TotalMJ, eSpark.TotalMJ())
	}
	if res.Energy.Speedup != legacySpeedup {
		t.Errorf("speedup: SDK %v, legacy %v", res.Energy.Speedup, legacySpeedup)
	}
	// Sanity on the physics, as the deleted core end-to-end test asserted.
	if res.Improved.BaselineAcc < 0.2 {
		t.Errorf("baseline accuracy %.2f too low", res.Improved.BaselineAcc)
	}
	if res.Energy.Savings < 0.30 {
		t.Errorf("energy savings %.1f%%, want >= 30%%", res.Energy.Savings*100)
	}
	if res.Energy.Speedup < 0.95 {
		t.Errorf("speedup %.3f, want >= ~1.0", res.Energy.Speedup)
	}
}

// A TrainedModel must round-trip through JSON losslessly: re-marshaling
// the decoded artifact yields identical bytes, and the reloaded model
// behaves identically under paired evaluation.
func TestTrainedModelJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	sys := tinySystem(t)
	ctx := context.Background()
	p := sys.Pipeline()
	if _, err := p.Train(ctx); err != nil {
		t.Fatal(err)
	}
	m, err := p.ImproveTolerance(ctx)
	if err != nil {
		t.Fatal(err)
	}

	b1, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back sparkxd.TrainedModel
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("model JSON is not stable across a round-trip")
	}
	if back.Stage != "improved" || back.Neurons != m.Neurons || back.BaselineAcc != m.BaselineAcc {
		t.Fatalf("metadata lost: %+v", back)
	}
	accA, err := sys.EvaluateModelAtBER(ctx, m, 1e-4, 11, 12)
	if err != nil {
		t.Fatal(err)
	}
	accB, err := sys.EvaluateModelAtBER(ctx, &back, 1e-4, 11, 12)
	if err != nil {
		t.Fatal(err)
	}
	if accA != accB {
		t.Fatalf("reloaded model diverged: %v vs %v", accA, accB)
	}
}

// A DeviceProfile must round-trip through JSON exactly.
func TestDeviceProfileJSONRoundTrip(t *testing.T) {
	sys := tinySystem(t)
	profile, err := sys.DeviceProfile(sparkxd.V1100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(profile)
	if err != nil {
		t.Fatal(err)
	}
	var back sparkxd.DeviceProfile
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(profile, &back) {
		t.Fatal("device profile did not round-trip exactly")
	}
}

// Persisting the improved model and tolerance report, then resuming a
// fresh pipeline from them, must reproduce Map + EvaluateUnderErrors +
// EnergyReport bit-identically — without retraining.
func TestPipelineResumeFromArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	sys := tinySystem(t)
	ctx := context.Background()
	res, err := sys.Pipeline().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	modelPath := filepath.Join(dir, "improved.json")
	tolPath := filepath.Join(dir, "tolerance.json")
	if err := sparkxd.SaveArtifact(modelPath, res.Improved); err != nil {
		t.Fatal(err)
	}
	if err := sparkxd.SaveArtifact(tolPath, res.Tolerance); err != nil {
		t.Fatal(err)
	}

	m, err := sparkxd.LoadTrainedModel(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	tol, err := sparkxd.LoadToleranceReport(tolPath)
	if err != nil {
		t.Fatal(err)
	}

	resumed := sys.Pipeline()
	resumed.Improved = m
	resumed.Tolerance = tol
	if _, err := resumed.Map(ctx); err != nil {
		t.Fatal(err)
	}
	ev, err := resumed.EvaluateUnderErrors(ctx)
	if err != nil {
		t.Fatal(err)
	}
	en, err := resumed.EnergyReport(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy != res.Evaluation.Accuracy {
		t.Errorf("resumed accuracy %v != original %v", ev.Accuracy, res.Evaluation.Accuracy)
	}
	if !reflect.DeepEqual(en, res.Energy) {
		t.Errorf("resumed energy report diverged: %+v vs %+v", en, res.Energy)
	}

	// The placement artifact itself round-trips too, and its rebuilt
	// layout drives an identical energy report.
	plPath := filepath.Join(dir, "placement.json")
	if err := sparkxd.SaveArtifact(plPath, res.Placement); err != nil {
		t.Fatal(err)
	}
	pl, err := sparkxd.LoadPlacement(plPath)
	if err != nil {
		t.Fatal(err)
	}
	again := sys.Pipeline()
	again.Improved = m
	again.Tolerance = tol
	again.Placement = pl
	en2, err := again.EnergyReport(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(en2, res.Energy) {
		t.Errorf("placement-resumed energy report diverged: %+v vs %+v", en2, res.Energy)
	}
}

// Cancellation mid-Train must surface promptly as context.Canceled and
// ErrCancelled.
func TestCancellationMidTrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var cancelled bool
	sys := tinySystem(t, sparkxd.WithObserver(func(ev sparkxd.Event) {
		// Cancel as soon as the stage starts: the per-sample ctx checks
		// inside the epoch loop must abort the stage mid-epoch.
		if ev.Stage == "train" && ev.Phase == "start" && !cancelled {
			cancelled = true
			cancel()
		}
	}))
	start := time.Now()
	_, err := sys.Pipeline().Train(ctx)
	if err == nil {
		t.Fatal("cancelled Train returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) is false: %v", err)
	}
	if !errors.Is(err, sparkxd.ErrCancelled) {
		t.Errorf("errors.Is(err, sparkxd.ErrCancelled) is false: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// Cancellation mid-AnalyzeTolerance must likewise return promptly with
// context.Canceled.
func TestCancellationMidAnalyzeTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	ctx := context.Background()
	actx, cancel := context.WithCancel(ctx)
	var cancelled bool
	sys := tinySystem(t, sparkxd.WithObserver(func(ev sparkxd.Event) {
		if ev.Stage == "analyze" && !cancelled {
			cancelled = true
			cancel()
		}
	}))
	p := sys.Pipeline()
	if _, err := p.Train(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ImproveTolerance(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := p.AnalyzeTolerance(actx)
	if err == nil {
		t.Fatal("cancelled AnalyzeTolerance returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) is false: %v", err)
	}
	if !errors.Is(err, sparkxd.ErrCancelled) {
		t.Errorf("errors.Is(err, sparkxd.ErrCancelled) is false: %v", err)
	}
	if p.Tolerance != nil {
		t.Error("cancelled stage must not store a tolerance artifact")
	}
}

// Stage preconditions and capacity failures surface as the public
// sentinels through errors.Is, and malformed artifacts as typed errors
// through errors.As.
func TestSentinelErrors(t *testing.T) {
	sys := tinySystem(t)
	ctx := context.Background()

	// Missing artifacts.
	p := sys.Pipeline()
	if _, err := p.ImproveTolerance(ctx); !errors.Is(err, sparkxd.ErrMissingArtifact) {
		t.Errorf("ImproveTolerance without baseline: %v", err)
	}
	if _, err := p.Map(ctx); !errors.Is(err, sparkxd.ErrMissingArtifact) {
		t.Errorf("Map without model: %v", err)
	}
	if _, err := p.EvaluateUnderErrors(ctx); !errors.Is(err, sparkxd.ErrMissingArtifact) {
		t.Errorf("EvaluateUnderErrors without placement: %v", err)
	}
	if _, err := p.EnergyReport(ctx); !errors.Is(err, sparkxd.ErrMissingArtifact) {
		t.Errorf("EnergyReport without placement: %v", err)
	}

	// No safe subarrays: a threshold no subarray can satisfy at an
	// aggressive voltage must surface ErrNoSafeSubarrays from Map.
	if testing.Short() {
		t.Skip("training part skipped in -short mode")
	}
	p2 := sys.Pipeline()
	if _, err := p2.Train(ctx); err != nil {
		t.Fatal(err)
	}
	p2.Improved = p2.Baseline
	p2.Tolerance = &sparkxd.ToleranceReport{BERth: 1e-15}
	_, err := p2.Map(ctx)
	if !errors.Is(err, sparkxd.ErrNoSafeSubarrays) {
		t.Errorf("Map with impossible threshold: want ErrNoSafeSubarrays, got %v", err)
	}
	// MapAdaptive must relax instead of failing.
	pl, err := p2.MapAdaptive(ctx)
	if err != nil {
		t.Fatalf("MapAdaptive must relax and succeed: %v", err)
	}
	if pl.EffectiveBERth <= pl.RequestedBERth {
		t.Error("MapAdaptive must report the relaxed threshold")
	}

	// errors.As on malformed artifacts.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = sparkxd.LoadTrainedModel(bad)
	var syn *json.SyntaxError
	if !errors.As(err, &syn) {
		t.Errorf("LoadTrainedModel on malformed file: want *json.SyntaxError via errors.As, got %v", err)
	}
}

// Observer events must arrive in stage order with coherent phases.
func TestObserverEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short mode")
	}
	var events []sparkxd.Event
	sys := tinySystem(t, sparkxd.WithObserver(func(ev sparkxd.Event) {
		events = append(events, ev)
	}))
	if _, err := sys.Pipeline().Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events observed")
	}
	seen := map[string]bool{}
	for _, ev := range events {
		seen[ev.Stage] = true
	}
	for _, stage := range []string{"train", "improve", "analyze", "map", "evaluate", "energy"} {
		if !seen[stage] {
			t.Errorf("no event from stage %q", stage)
		}
	}
}
