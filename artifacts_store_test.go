// Tests of the artifact persistence surface: typed load failures
// (missing, truncated, wrong kind) and content-addressed store round
// trips through the public helpers.
package sparkxd_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sparkxd"
)

// A missing artifact file must satisfy both ErrMissingArtifact (the
// public sentinel) and os.ErrNotExist (so callers can keep
// distinguishing "nothing persisted" from "broken file").
func TestLoadMissingArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	_, err := sparkxd.LoadTrainedModel(path)
	if !errors.Is(err, sparkxd.ErrMissingArtifact) {
		t.Errorf("want ErrMissingArtifact, got %v", err)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("want os.ErrNotExist preserved, got %v", err)
	}
	if _, err := sparkxd.LoadSweepReport(path); !errors.Is(err, sparkxd.ErrMissingArtifact) {
		t.Errorf("LoadSweepReport: want ErrMissingArtifact, got %v", err)
	}
}

// Truncated or non-envelope JSON must come back as ErrCorruptArtifact —
// never as a silently zero-valued artifact — with the JSON cause still
// inspectable.
func TestLoadCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"truncated.json":    `{"kind":"tolerance-report","schemaVersion":1,"payl`,
		"not-envelope.json": `{"baseline_acc":0.9,"ber_th":1e-5}`, // a bare legacy artifact
		"not-object.json":   `42`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := sparkxd.LoadToleranceReport(path); !errors.Is(err, sparkxd.ErrCorruptArtifact) {
			t.Errorf("%s: want ErrCorruptArtifact, got %v", name, err)
		}
	}
	// The *json.SyntaxError of malformed bytes stays reachable.
	bad := filepath.Join(dir, "syntax.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := sparkxd.LoadToleranceReport(bad)
	var syn *json.SyntaxError
	if !errors.As(err, &syn) {
		t.Errorf("want *json.SyntaxError via errors.As, got %v", err)
	}
}

// An envelope of the wrong kind must be rejected with a typed error: a
// placement file loaded as a tolerance report is corruption, not zeros.
func TestLoadWrongKindArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "placement.json")
	pl := &sparkxd.Placement{Voltage: 1.1, Policy: sparkxd.PolicyBaseline, WeightCount: 10}
	if err := sparkxd.SaveArtifact(path, pl); err != nil {
		t.Fatal(err)
	}
	_, err := sparkxd.LoadToleranceReport(path)
	if !errors.Is(err, sparkxd.ErrCorruptArtifact) {
		t.Errorf("loading a placement as a tolerance report: want ErrCorruptArtifact, got %v", err)
	}
	// The right loader still works.
	got, err := sparkxd.LoadPlacement(path)
	if err != nil {
		t.Fatalf("LoadPlacement: %v", err)
	}
	if got.Voltage != 1.1 || got.WeightCount != 10 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

// Store round trip at the SDK level: Put/Get equality and key stability
// across repeated puts and across store instances over the same dir.
func TestArtifactStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := sparkxd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := &sparkxd.SweepReport{
		Dataset: "mnist", Neurons: 50, BaselineAcc: 0.875,
		Voltages: []float64{1.1}, BERs: []float64{1e-5},
		ErrorModels: []sparkxd.ErrorModelName{"uniform"}, Policies: []sparkxd.Policy{sparkxd.PolicySparkXD},
		Points: []sparkxd.SweepPoint{{Key: "v1.1000/ber1e-05/uniform/sparkxd", Voltage: 1.1, BER: 1e-5,
			ErrorModel: "uniform", Policy: sparkxd.PolicySparkXD, Accuracy: 0.75}},
	}
	key, err := sparkxd.PutArtifact(st, rep)
	if err != nil {
		t.Fatal(err)
	}
	if key.Kind() != sparkxd.KindSweepReport {
		t.Errorf("key kind = %q", key.Kind())
	}
	key2, err := sparkxd.PutArtifact(st, rep)
	if err != nil {
		t.Fatal(err)
	}
	if key != key2 {
		t.Errorf("content address unstable: %s vs %s", key, key2)
	}

	// A fresh store handle over the same directory resolves the key.
	st2, err := sparkxd.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sparkxd.GetSweepReport(st2, key)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Errorf("round trip mismatch:\n%s\n%s", a, b)
	}

	// Typed getters reject keys of the wrong kind and missing keys.
	if _, err := sparkxd.GetTrainedModel(st2, key); !errors.Is(err, sparkxd.ErrCorruptArtifact) {
		t.Errorf("GetTrainedModel on a sweep key: want ErrCorruptArtifact, got %v", err)
	}
	missing := sparkxd.ArtifactKey(sparkxd.KindSweepReport + "/0000000000000000000000000000000000000000000000000000000000000000")
	if _, err := sparkxd.GetSweepReport(st2, missing); !errors.Is(err, sparkxd.ErrMissingArtifact) {
		t.Errorf("missing key: want ErrMissingArtifact, got %v", err)
	}
}
