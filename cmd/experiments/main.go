// Command experiments regenerates the tables and figures of the SparkXD
// paper's evaluation (see DESIGN.md §4 for the index).
//
// Usage:
//
//	experiments -list
//	experiments -fig 2b            # one figure (1a 1b 2a 2b 2c 2d 6 8 11 12a 12b)
//	experiments -table 1           # Table I
//	experiments -all               # everything
//	experiments -full -fig 11      # paper-scale sizes instead of quick mode
//
//	experiments run                          # whole suite on the scheduler
//	experiments run -workers 8 -json         # machine-readable result records
//	experiments run -shard 1/2               # CI matrix slice of the suite
//	experiments run -only fig8,fig11         # subset of jobs
//
// The run subcommand executes every registered experiment as a job of
// the internal/sched work-stealing scheduler. Result records on stdout
// are byte-identical for any -workers value and any -shard split (the
// determinism contract of DESIGN.md §6); timing records, which are
// inherently nondeterministic, go to stderr.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"sparkxd/internal/experiments"
	"sparkxd/internal/report"
	"sparkxd/internal/sched"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "run" {
		os.Exit(runSuite(os.Args[2:]))
	}
	legacyMain()
}

// resultRecord is the deterministic per-job record emitted on stdout in
// -json mode. It carries no timing and no worker identity: two runs with
// different -workers values must produce byte-identical streams.
type resultRecord struct {
	Job    string `json:"job"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
	Bytes  int    `json:"bytes,omitempty"`
}

// timingRecord is the per-job timing record emitted on stderr in -json
// mode (machine-readable but deliberately separated from the result
// stream, which must stay deterministic).
type timingRecord struct {
	Job       string  `json:"job"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Worker    int     `json:"worker"`
	Stolen    bool    `json:"stolen"`
}

type suiteRecord struct {
	Shard       string `json:"shard"`
	Workers     int    `json:"workers"`
	Jobs        int    `json:"jobs"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

func runSuite(args []string) int {
	fs := flag.NewFlagSet("experiments run", flag.ExitOnError)
	var (
		workers   = fs.Int("workers", 0, "scheduler worker pool size (0 = GOMAXPROCS)")
		shardSpec = fs.String("shard", "", "run only slice i/m of the suite (e.g. 1/2)")
		jsonOut   = fs.Bool("json", false, "emit JSON result records on stdout, timing records on stderr")
		full      = fs.Bool("full", false, "paper-scale sizes (slower); default is quick mode")
		seed      = fs.Uint64("seed", 2021, "random seed")
		quiet     = fs.Bool("quiet", false, "suppress progress logging")
		only      = fs.String("only", "", "comma-separated job names (default: whole suite; see -list)")
		list      = fs.Bool("list", false, "list available jobs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range experiments.Entries() {
			fmt.Printf("%-20s %s\n", e.Name, e.Desc)
		}
		return 0
	}

	shard, err := sched.ParseShard(*shardSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments run: %v\n", err)
		return 2
	}

	opts := experiments.Options{Quick: !*full, Seed: *seed, Workers: *workers, Log: os.Stderr}
	if *quiet || *jsonOut {
		opts.Log = nil
	}
	r := experiments.NewRunner(opts)

	s, err := sched.New(sched.Config{Workers: *workers, Shard: shard, Seed: *seed, Cache: r.Cache()})
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments run: %v\n", err)
		return 2
	}
	jobs := r.Jobs()
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if _, ok := experiments.Lookup(name); !ok {
				fmt.Fprintf(os.Stderr, "experiments run: unknown job %q (try -list)\n", name)
				return 2
			}
			keep[name] = true
		}
		var filtered []sched.Job
		for _, j := range jobs {
			if keep[j.Name] {
				filtered = append(filtered, j)
			}
		}
		jobs = filtered
	}
	if err := s.Add(jobs...); err != nil {
		fmt.Fprintf(os.Stderr, "experiments run: %v\n", err)
		return 2
	}

	// Split the CPU budget between the scheduler pool and intra-job
	// parallelism (panel sweeps call parallelFor): with many jobs in
	// flight each one runs serially inside; a single-job run keeps the
	// whole pool for its inner loops. Worker counts never affect
	// results, only wall-clock.
	inner := 1
	if n := len(s.Members()); n > 0 && n < s.Workers() {
		inner = s.Workers() / n
	}
	r.Opts.Workers = inner

	reports, runErr := s.Run()

	if *jsonOut {
		emitJSON(r, s, shard, reports)
	} else {
		emitText(r, reports)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "experiments run: %v\n", report.FirstLine(runErr.Error()))
		return 1
	}
	return 0
}

// emitJSON writes deterministic result records to stdout (name order,
// no timing) and timing/suite records to stderr.
func emitJSON(r *experiments.Runner, s *sched.Scheduler, shard sched.Shard, reports []sched.Report) {
	out := json.NewEncoder(os.Stdout)
	diag := json.NewEncoder(os.Stderr)
	for _, rep := range reports {
		rec := resultRecord{Job: rep.Name}
		if rep.Err != nil {
			rec.Error = report.FirstLine(rep.Err.Error())
		} else {
			var buf bytes.Buffer
			if res, ok := rep.Value.(experiments.Result); ok && res != nil {
				res.Render(&buf)
			}
			sum := sha256.Sum256(buf.Bytes())
			rec.OK = true
			rec.SHA256 = hex.EncodeToString(sum[:])
			rec.Bytes = buf.Len()
		}
		_ = out.Encode(rec)
	}
	for _, rep := range reports {
		_ = diag.Encode(timingRecord{
			Job:       rep.Name,
			ElapsedMS: float64(rep.Elapsed.Microseconds()) / 1000,
			Worker:    rep.Worker,
			Stolen:    rep.Stolen,
		})
	}
	hits, misses := r.CacheStats()
	_ = diag.Encode(suiteRecord{
		Shard:       shard.String(),
		Workers:     s.Workers(),
		Jobs:        len(reports),
		CacheHits:   hits,
		CacheMisses: misses,
	})
}

// emitText renders each result in suite (figure) order with per-job
// timings on stderr.
func emitText(r *experiments.Runner, reports []sched.Report) {
	ordered := append([]sched.Report(nil), reports...)
	seq := func(name string) int {
		if e, ok := experiments.Lookup(name); ok {
			return e.Seq
		}
		return 1 << 30
	}
	sort.SliceStable(ordered, func(a, b int) bool { return seq(ordered[a].Name) < seq(ordered[b].Name) })
	for _, rep := range ordered {
		fmt.Printf("\n================ %s ================\n", rep.Name)
		if rep.Err != nil {
			fmt.Printf("FAILED: %s\n", report.FirstLine(rep.Err.Error()))
			continue
		}
		if res, ok := rep.Value.(experiments.Result); ok && res != nil {
			res.Render(os.Stdout)
		}
	}
	for _, rep := range ordered {
		if rep.Err == nil {
			fmt.Fprintf(os.Stderr, "timing: %-20s %8.1f ms (worker %d)\n",
				rep.Name, float64(rep.Elapsed.Microseconds())/1000, rep.Worker)
		}
	}
	hits, misses := r.CacheStats()
	fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses\n", hits, misses)
}

// legacyMain preserves the original flag-based single-experiment
// interface, now routed through the registry.
func legacyMain() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate: 1a 1b 2a 2b 2c 2d 6 8 11 12a 12b")
		table    = flag.String("table", "", "table to regenerate: 1")
		ablation = flag.Bool("ablations", false, "run the design-choice ablations (error models, mapping, coding)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		full     = flag.Bool("full", false, "paper-scale sizes (slower); default is quick mode")
		list     = flag.Bool("list", false, "list available experiments")
		seed     = flag.Uint64("seed", 2021, "random seed")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	if *list {
		fmt.Println("jobs (use with `experiments run -only ...`):")
		for _, e := range experiments.Entries() {
			fmt.Printf("  %-20s %s\n", e.Name, e.Desc)
		}
		fmt.Println("legacy flags: -fig 1a|1b|2a|2b|2c|2d|6|8|11|12a|12b, -table 1, -ablations, -all")
		return
	}

	opts := experiments.Options{Quick: !*full, Seed: *seed, Log: os.Stderr}
	if *quiet {
		opts.Log = nil
	}
	r := experiments.NewRunner(opts)
	out := os.Stdout

	run := func(name string) error {
		e, ok := experiments.Lookup(name)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", name)
		}
		fmt.Fprintf(out, "\n================ %s ================\n", name)
		res, err := e.Run(r)
		if err != nil {
			return err
		}
		res.Render(out)
		return nil
	}

	var names []string
	switch {
	case *all:
		for _, e := range experiments.Entries() {
			names = append(names, e.Name)
		}
	case *fig != "":
		names = []string{"fig" + *fig}
	case *table != "":
		names = []string{"table" + *table}
	case *ablation:
		names = []string{"ablation-mapping", "ablation-errmodels", "ablation-coding"}
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass `run`, -fig, -table, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}
