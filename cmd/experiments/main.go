// Command experiments regenerates the tables and figures of the SparkXD
// paper's evaluation (see DESIGN.md §4 for the index).
//
// Usage:
//
//	experiments -list
//	experiments -fig 2b            # one figure (1a 1b 2a 2b 2c 2d 6 8 11 12a 12b)
//	experiments -table 1           # Table I
//	experiments -all               # everything
//	experiments -full -fig 11      # paper-scale sizes instead of quick mode
package main

import (
	"flag"
	"fmt"
	"os"

	"sparkxd/internal/experiments"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate: 1a 1b 2a 2b 2c 2d 6 8 11 12a 12b")
		table    = flag.String("table", "", "table to regenerate: 1")
		ablation = flag.Bool("ablations", false, "run the design-choice ablations (error models, mapping, coding)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		full     = flag.Bool("full", false, "paper-scale sizes (slower); default is quick mode")
		list     = flag.Bool("list", false, "list available experiments")
		seed     = flag.Uint64("seed", 2021, "random seed")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	if *list {
		fmt.Println("figures:   1a 1b 2a 2b 2c 2d 6 8 11 12a 12b")
		fmt.Println("tables:    1")
		fmt.Println("ablations: -ablations (error models, mapping decomposition, spike coding)")
		return
	}

	opts := experiments.Options{Quick: !*full, Seed: *seed, Log: os.Stderr}
	if *quiet {
		opts.Log = nil
	}
	r := experiments.NewRunner(opts)
	out := os.Stdout

	run := func(name string) error {
		fmt.Fprintf(out, "\n================ %s ================\n", name)
		switch name {
		case "fig1a":
			res, err := r.Fig1a()
			if err != nil {
				return err
			}
			res.Render(out)
		case "fig1b":
			r.Fig1b().Render(out)
		case "fig2a":
			res, err := r.Fig2a()
			if err != nil {
				return err
			}
			res.Render(out)
		case "fig2b":
			r.Fig2b().Render(out)
		case "fig2c":
			r.Fig2c().Render(out)
		case "fig2d":
			r.Fig2d().Render(out)
		case "fig6":
			r.Fig6().Render(out)
		case "fig8":
			res, err := r.Fig8()
			if err != nil {
				return err
			}
			res.Render(out)
		case "fig11":
			res, err := r.Fig11()
			if err != nil {
				return err
			}
			res.Render(out)
		case "fig12a":
			res, err := r.Fig12a()
			if err != nil {
				return err
			}
			res.Render(out)
		case "fig12b":
			res, err := r.Fig12b()
			if err != nil {
				return err
			}
			res.Render(out)
		case "table1":
			r.TableI().Render(out)
		case "ablations":
			am, err := r.AblationMapping()
			if err != nil {
				return err
			}
			am.Render(out)
			ae, err := r.AblationErrModels(1e-3)
			if err != nil {
				return err
			}
			ae.Render(out)
			ac, err := r.AblationCoding()
			if err != nil {
				return err
			}
			ac.Render(out)
		default:
			return fmt.Errorf("unknown experiment %q (try -list)", name)
		}
		return nil
	}

	var names []string
	switch {
	case *all:
		names = []string{"fig1a", "fig1b", "fig2a", "fig2b", "fig2c", "fig2d",
			"fig6", "fig8", "fig11", "fig12a", "fig12b", "table1", "ablations"}
	case *fig != "":
		names = []string{"fig" + *fig}
	case *table != "":
		names = []string{"table" + *table}
	case *ablation:
		names = []string{"ablations"}
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -fig, -table, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}
