// Command benchtool normalizes `go test -bench` output into the repo's
// committed benchmark baseline and gates changes against it.
//
//	go test -bench ... | benchtool record -o BENCH_kernel.json
//	go test -bench ... | benchtool check -baseline BENCH_kernel.json
//
// check exits non-zero when any baseline benchmark is missing from the
// current run or its ns/op regressed beyond the tolerance (flag
// -tolerance, overridable with the BENCH_TOLERANCE environment variable;
// default 0.25 = 25%). Both subcommands aggregate min-of-runs, so feed
// them -count=3 output. scripts/bench-record.sh and bench-check.sh wrap
// the full pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"sparkxd/internal/benchfmt"
)

func main() {
	if len(os.Args) < 2 {
		fail("usage: benchtool {record|check} [flags] < bench-output")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "check":
		check(os.Args[2:])
	default:
		fail("benchtool: unknown subcommand %q (want record or check)", os.Args[1])
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "BENCH_kernel.json", "output baseline file")
	_ = fs.Parse(args)

	results, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fail("benchtool: parse: %v", err)
	}
	if len(results) == 0 {
		fail("benchtool: no benchmark lines on stdin")
	}
	b := &benchfmt.Baseline{
		Note:       "min-of-runs kernel benchmark baseline; regenerate with scripts/bench-record.sh",
		Benchmarks: results,
	}
	f, err := os.Create(*out)
	if err != nil {
		fail("benchtool: %v", err)
	}
	if err := benchfmt.WriteBaseline(f, b); err != nil {
		fail("benchtool: write: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("benchtool: close: %v", err)
	}
	fmt.Printf("recorded %d benchmarks to %s\n", len(results), *out)
}

func check(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	basePath := fs.String("baseline", "BENCH_kernel.json", "committed baseline file")
	tol := fs.Float64("tolerance", defaultTolerance(), "allowed ns/op regression fraction")
	_ = fs.Parse(args)

	bf, err := os.Open(*basePath)
	if err != nil {
		fail("benchtool: %v", err)
	}
	base, err := benchfmt.ReadBaseline(bf)
	bf.Close()
	if err != nil {
		fail("benchtool: %v", err)
	}
	current, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fail("benchtool: parse: %v", err)
	}
	deltas, ok := benchfmt.Compare(base, current, *tol)
	fmt.Printf("benchmark gate: tolerance %.0f%%\n", *tol*100)
	for _, d := range deltas {
		fmt.Println("  " + d.Format())
	}
	if !ok {
		fail("benchtool: gate FAILED (regression beyond tolerance or missing benchmark)")
	}
	fmt.Println("benchmark gate: PASS")
}

// defaultTolerance reads BENCH_TOLERANCE (a fraction, e.g. "0.25") so CI
// can loosen or tighten the gate without editing the workflow.
func defaultTolerance() float64 {
	if s := os.Getenv("BENCH_TOLERANCE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v >= 0 {
			return v
		}
		fmt.Fprintf(os.Stderr, "benchtool: ignoring invalid BENCH_TOLERANCE=%q\n", s)
	}
	return 0.25
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
