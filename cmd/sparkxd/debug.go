package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"sparkxd/internal/logging"
	"sparkxd/internal/version"
)

// newCLILogger builds a serving binary's structured logger from its
// -quiet and -log-level flags: JSON lines to stderr, or a discard
// logger under -quiet. A bad level name prints to stderr and returns a
// non-zero usage exit code.
func newCLILogger(prog string, quiet bool, level string, stderr io.Writer) (*slog.Logger, int) {
	if quiet {
		return logging.Discard(), 0
	}
	lvl, err := logging.ParseLevel(level)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		return nil, 2
	}
	return logging.JSON(stderr, lvl), 0
}

// startDebugServer exposes the Go diagnostics toolbox on its own
// listener, shared by `serve -debug-addr`, `worker -debug-addr`, and
// `store serve -debug-addr`:
//
//	/debug/pprof/            index (heap, goroutine, block, mutex, ...)
//	/debug/pprof/profile     30s CPU profile
//	/debug/pprof/trace       runtime execution trace
//	/debug/vars              JSON runtime snapshot (goroutines, memory)
//
// It is opt-in and bound to a separate address precisely so the serving
// endpoints never expose profiling to job-submitting clients; bind it
// to localhost (or port 0 in scripts) and point `go tool pprof` at it.
// The returned close func stops the listener; callers defer it.
func startDebugServer(addr string, stdout, stderr io.Writer) (func(), bool) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "debug listen: %v\n", err)
		return nil, false
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/vars", handleDebugVars)
	hs := &http.Server{Handler: mux}
	go func() { _ = hs.Serve(ln) }()
	fmt.Fprintf(stdout, "debug on http://%s/debug/pprof/\n", ln.Addr())
	return func() { _ = hs.Close() }, true
}

// handleDebugVars serves a one-shot JSON snapshot of process runtime
// state — the numbers a first-response debugging session wants before
// reaching for a full profile.
func handleDebugVars(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := map[string]any{
		"version":        version.String(),
		"go_version":     runtime.Version(),
		"goroutines":     runtime.NumGoroutine(),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"num_cpu":        runtime.NumCPU(),
		"num_gc":         ms.NumGC,
		"heap_alloc":     ms.HeapAlloc,
		"heap_inuse":     ms.HeapInuse,
		"heap_objects":   ms.HeapObjects,
		"stack_inuse":    ms.StackInuse,
		"total_alloc":    ms.TotalAlloc,
		"gc_pause_total": time.Duration(ms.PauseTotalNs).String(),
	}
	w.Header().Set("Content-Type", "application/json")
	b, _ := json.MarshalIndent(snap, "", "  ")
	w.Write(append(b, '\n'))
}
