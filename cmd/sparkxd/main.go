// Command sparkxd runs the end-to-end SparkXD pipeline (Fig. 7 of the
// paper) on one network configuration: train a baseline SNN, improve its
// error tolerance with fault-aware training (Algorithm 1), find the
// maximum tolerable BER, map the weights into safe subarrays of the
// approximate DRAM (Algorithm 2), and report accuracy, DRAM energy, and
// throughput.
//
// Usage:
//
//	sparkxd -neurons 400 -dataset mnist -voltage 1.025
package main

import (
	"flag"
	"fmt"
	"os"

	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/report"
)

func main() {
	var (
		neurons = flag.Int("neurons", 400, "excitatory neurons (paper: 400/900/1600/2500/3600)")
		flavor  = flag.String("dataset", "mnist", "dataset flavour: mnist or fashion")
		voltage = flag.Float64("voltage", 1.025, "approximate-DRAM supply voltage [V]")
		trainN  = flag.Int("train", 300, "training samples")
		testN   = flag.Int("test", 128, "test samples")
		epochs  = flag.Int("epochs", 2, "error-free training epochs")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	fl := dataset.MNISTLike
	switch *flavor {
	case "mnist":
	case "fashion":
		fl = dataset.FashionLike
	default:
		fmt.Fprintf(os.Stderr, "sparkxd: unknown dataset %q (mnist|fashion)\n", *flavor)
		os.Exit(2)
	}

	cfg := core.DefaultRunConfig(*neurons)
	cfg.Flavor = fl
	cfg.Voltage = *voltage
	cfg.TrainN = *trainN
	cfg.TestN = *testN
	cfg.BaseEpochs = *epochs
	cfg.NetworkSeed = *seed

	fmt.Printf("SparkXD: N%d on %s, approximate DRAM at %.3f V\n", *neurons, fl, *voltage)
	f := core.NewFramework()
	res, err := f.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparkxd: %v\n", err)
		os.Exit(1)
	}

	tb := report.NewTable("pipeline result", "metric", "value")
	tb.AddRow("baseline accuracy (accurate DRAM)", report.Pct(res.BaselineAcc))
	tb.AddRow("improved accuracy (approx DRAM, SparkXD)", report.Pct(res.ImprovedAcc))
	tb.AddRow("maximum tolerable BER", fmt.Sprintf("%.0e", res.BERth))
	tb.AddRow("DRAM energy, baseline @1.350V", fmt.Sprintf("%.4f mJ", res.EnergyBaseline.TotalMJ()))
	tb.AddRow("DRAM energy, SparkXD", fmt.Sprintf("%.4f mJ @%.3fV", res.EnergySparkXD.TotalMJ(), res.EnergySparkXD.Voltage))
	tb.AddRow("DRAM energy savings", report.Pct(res.EnergySavings()))
	tb.AddRow("speed-up (mapping effect)", fmt.Sprintf("%.3fx", res.Speedup))
	tb.AddRow("row-buffer hit rate (SparkXD)", report.Pct(res.EnergySparkXD.Stats.HitRate()))
	tb.Render(os.Stdout)

	curve := report.NewTable("error-tolerance curve of the improved model", "BER", "accuracy")
	for _, p := range res.Curve {
		curve.AddRow(fmt.Sprintf("%.0e", p.BER), report.Pct(p.Acc))
	}
	curve.Render(os.Stdout)
}
