// Command sparkxd runs the end-to-end SparkXD pipeline (Fig. 7 of the
// paper) through the public sparkxd SDK: train a baseline SNN, improve
// its error tolerance with fault-aware training (Algorithm 1), find the
// maximum tolerable BER, map the weights into safe subarrays of the
// approximate DRAM (Algorithm 2), and report accuracy, DRAM energy, and
// throughput.
//
// Usage:
//
//	sparkxd single -neurons 400 -dataset mnist -voltage 1.025
//	sparkxd single -artifacts out/        # persist stage artifacts
//	sparkxd single -resume out/           # reuse them: no retraining
//
//	sparkxd run -neurons 200,400 -datasets mnist,fashion -workers 4
//	sparkxd run -shard 1/2 -json
//
// The run subcommand sweeps a grid of (dataset, network size) pipeline
// configurations as jobs of the internal/sched work-stealing scheduler.
// With -json, one deterministic result record per configuration is
// written to stdout (byte-identical for any -workers value or -shard
// split) and timing records go to stderr.
//
//	sparkxd serve -addr 127.0.0.1:8080 -store ./artifacts
//	sparkxd serve -dispatch fleet -store ./artifacts   # coordinator only
//	sparkxd worker -join http://127.0.0.1:8080 -workers 4
//	sparkxd job submit -addr http://127.0.0.1:8080 -spec job.json
//
// The serve subcommand exposes the pipeline and sweep engine as an HTTP
// job service over a content-addressed artifact store; with -dispatch
// fleet or hybrid it coordinates `sparkxd worker` processes over a
// lease protocol (at-most-one lease per job, TTL heartbeats, requeue on
// expiry) and serves completed jobs from durable store records across
// restarts. job is the service's command-line client (see DESIGN.md
// §8/§9 and the sparkxd/client package).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"sparkxd"
	"sparkxd/internal/report"
	"sparkxd/internal/sched"
)

func usage(w io.Writer) {
	fmt.Fprintf(w, `sparkxd — resilient SNN inference on approximate DRAM

Usage:
  sparkxd <command> [flags]

Commands:
  single    run the end-to-end pipeline for one configuration
  run       sweep a (dataset x size) grid on the work-stealing scheduler
  sweep     evaluate one model over a (voltage x BER x error model x
            policy) scenario grid on the batched sweep engine
  serve     run the HTTP job service over a content-addressed store
            (-dispatch fleet|hybrid coordinates remote workers;
            -shard i/m federates coordinators over the job-ID space)
  store     expose a local artifact store over HTTP ("store serve") so
            coordinators, workers, and CLI runs can share one store
  worker    join a coordinator as a fleet worker: lease, execute,
            upload, complete
  job       talk to a running job service (submit, status, wait,
            events, fetch)
  loadgen   drive a running job service with concurrent closed-loop
            clients and print a JSON latency/throughput report
  trace     fetch a completed job's distributed trace and render it as
            an ASCII waterfall (or raw JSON with -json)
  version   print the sparkxd build version
  help      show this message

Run "sparkxd <command> -h" for the command's flags.
`)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommand and returns the process exit code:
// 0 success, 1 runtime failure, 2 usage error. Every subcommand shares
// this contract: unknown commands and bad flags print usage to stderr
// and exit 2, runtime failures exit 1.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "single":
		return runSingle(ctx, args[1:], stdout, stderr)
	case "run":
		return runSuite(ctx, args[1:], stdout, stderr)
	case "sweep":
		return runSweep(ctx, args[1:], stdout, stderr)
	case "serve":
		return runServe(ctx, args[1:], stdout, stderr)
	case "store":
		return runStore(ctx, args[1:], stdout, stderr)
	case "worker":
		return runWorker(ctx, args[1:], stdout, stderr)
	case "job":
		return runJob(ctx, args[1:], stdout, stderr)
	case "loadgen":
		return runLoadgen(ctx, args[1:], stdout, stderr)
	case "trace":
		return runTrace(ctx, args[1:], stdout, stderr)
	case "version":
		return runVersion(args[1:], stdout, stderr)
	case "help", "-h", "--help":
		usage(stdout)
		return 0
	default:
		// Back-compat: a leading flag ("sparkxd -neurons 400") routes to
		// the single-run pipeline.
		if strings.HasPrefix(args[0], "-") {
			return runSingle(ctx, args, stdout, stderr)
		}
		fmt.Fprintf(stderr, "sparkxd: unknown command %q\n\n", args[0])
		usage(stderr)
		return 2
	}
}

// parseFlags applies the shared flag-parsing contract: -h/-help prints
// the flag set's usage and exits 0; a bad flag prints usage to stderr
// and exits 2. The returned code is only meaningful when done is true.
func parseFlags(fs *flag.FlagSet, args []string, stderr io.Writer) (code int, done bool) {
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, true
		}
		return 2, true
	}
	return 0, false
}

// pipelineRecord is the deterministic per-configuration record emitted
// on stdout in -json mode (no timing: it must be byte-identical across
// worker counts).
type pipelineRecord struct {
	Job         string  `json:"job"`
	OK          bool    `json:"ok"`
	Error       string  `json:"error,omitempty"`
	Neurons     int     `json:"neurons,omitempty"`
	Dataset     string  `json:"dataset,omitempty"`
	Voltage     float64 `json:"voltage,omitempty"`
	BaselineAcc float64 `json:"baseline_acc,omitempty"`
	ImprovedAcc float64 `json:"improved_acc,omitempty"`
	BERth       float64 `json:"ber_th,omitempty"`
	EnergyMJ    float64 `json:"energy_mj,omitempty"`
	Savings     float64 `json:"savings,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
}

func runSuite(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd run", flag.ContinueOnError)
	var (
		neurons   = fs.String("neurons", "200,400", "comma-separated excitatory neuron counts")
		flavors   = fs.String("datasets", "mnist,fashion", "comma-separated dataset flavours (mnist, fashion)")
		voltage   = fs.Float64("voltage", 1.025, "approximate-DRAM supply voltage [V]")
		trainN    = fs.Int("train", 300, "training samples")
		testN     = fs.Int("test", 128, "test samples")
		epochs    = fs.Int("epochs", 2, "error-free training epochs")
		seed      = fs.Uint64("seed", 1, "random seed")
		workers   = fs.Int("workers", 0, "scheduler worker pool size (0 = GOMAXPROCS)")
		shardSpec = fs.String("shard", "", "run only slice i/m of the sweep (e.g. 1/2)")
		jsonOut   = fs.Bool("json", false, "emit JSON result records on stdout, timing records on stderr")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	shard, err := sched.ParseShard(*shardSpec)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd run: %v\n", err)
		return 2
	}

	var sizes []int
	for _, tok := range strings.Split(*neurons, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n <= 0 {
			fmt.Fprintf(stderr, "sparkxd run: bad neuron count %q\n", tok)
			return 2
		}
		sizes = append(sizes, n)
	}
	var fls []sparkxd.Dataset
	for _, tok := range strings.Split(*flavors, ",") {
		fl, err := sparkxd.ParseDataset(strings.TrimSpace(tok))
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd run: %v\n", err)
			return 2
		}
		fls = append(fls, fl)
	}

	s, err := sched.New(sched.Config{Workers: *workers, Shard: shard, Seed: *seed})
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd run: %v\n", err)
		return 2
	}
	type jobCfg struct {
		name    string
		neurons int
		flavor  sparkxd.Dataset
	}
	var cfgs []jobCfg
	for _, fl := range fls {
		for _, n := range sizes {
			cfgs = append(cfgs, jobCfg{
				name:    fmt.Sprintf("pipeline/%s/N%04d", fl, n),
				neurons: n,
				flavor:  fl,
			})
		}
	}
	for _, jc := range cfgs {
		jc := jc
		// Larger networks dominate the runtime: use the neuron count as
		// the cost hint so big configurations start first.
		err := s.Add(sched.Job{Name: jc.name, Cost: float64(jc.neurons),
			Run: func(*sched.Ctx) (any, error) {
				sys, err := sparkxd.New(
					sparkxd.WithNeurons(jc.neurons),
					sparkxd.WithDataset(jc.flavor),
					sparkxd.WithVoltage(*voltage),
					sparkxd.WithSampleBudget(*trainN, *testN),
					sparkxd.WithBaseEpochs(*epochs),
					sparkxd.WithSeed(*seed),
				)
				if err != nil {
					return nil, err
				}
				return sys.Pipeline().Run(ctx)
			}})
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd run: %v\n", err)
			return 2
		}
	}

	reports, runErr := s.Run()
	byName := make(map[string]jobCfg, len(cfgs))
	for _, jc := range cfgs {
		byName[jc.name] = jc
	}

	if *jsonOut {
		out := json.NewEncoder(stdout)
		diag := json.NewEncoder(stderr)
		for _, rep := range reports {
			rec := pipelineRecord{Job: rep.Name}
			if rep.Err != nil {
				rec.Error = report.FirstLine(rep.Err.Error())
			} else if res, ok := rep.Value.(*sparkxd.Result); ok {
				jc := byName[rep.Name]
				rec.OK = true
				rec.Neurons = jc.neurons
				rec.Dataset = jc.flavor.String()
				rec.Voltage = *voltage
				rec.BaselineAcc = res.Improved.BaselineAcc
				rec.ImprovedAcc = res.Evaluation.Accuracy
				rec.BERth = res.Tolerance.BERth
				rec.EnergyMJ = res.Energy.SparkXD.TotalMJ
				rec.Savings = res.Energy.Savings
				rec.Speedup = res.Energy.Speedup
			}
			_ = out.Encode(rec)
		}
		for _, rep := range reports {
			_ = diag.Encode(struct {
				Job       string  `json:"job"`
				ElapsedMS float64 `json:"elapsed_ms"`
				Worker    int     `json:"worker"`
			}{rep.Name, float64(rep.Elapsed.Microseconds()) / 1000, rep.Worker})
		}
	} else {
		ordered := append([]sched.Report(nil), reports...)
		sort.Slice(ordered, func(a, b int) bool { return ordered[a].Name < ordered[b].Name })
		tb := report.NewTable(fmt.Sprintf("pipeline sweep @%.3fV (shard %s)", *voltage, shard),
			"configuration", "baseline acc", "improved acc", "BERth", "energy [mJ]", "savings", "speed-up")
		for _, rep := range ordered {
			if rep.Err != nil {
				tb.AddRow(rep.Name, "FAILED: "+report.FirstLine(rep.Err.Error()), "", "", "", "", "")
				continue
			}
			res := rep.Value.(*sparkxd.Result)
			tb.AddRow(rep.Name, report.Pct(res.Improved.BaselineAcc), report.Pct(res.Evaluation.Accuracy),
				fmt.Sprintf("%.0e", res.Tolerance.BERth), res.Energy.SparkXD.TotalMJ,
				report.Pct(res.Energy.Savings), fmt.Sprintf("%.3fx", res.Energy.Speedup))
		}
		tb.Render(stdout)
		for _, rep := range ordered {
			if rep.Err == nil {
				fmt.Fprintf(stderr, "timing: %-24s %8.1f ms (worker %d)\n",
					rep.Name, float64(rep.Elapsed.Microseconds())/1000, rep.Worker)
			}
		}
	}
	if runErr != nil {
		fmt.Fprintf(stderr, "sparkxd run: %v\n", report.FirstLine(runErr.Error()))
		return 1
	}
	return 0
}

// runSweep drives Pipeline.Sweep: train (or resume) one model, then
// evaluate it over the scenario grid on the batched sweep engine. The
// -json report is byte-identical for any -workers value.
func runSweep(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd sweep", flag.ContinueOnError)
	var (
		neurons  = fs.Int("neurons", 400, "excitatory neurons")
		flavor   = fs.String("dataset", "mnist", "dataset flavour: mnist or fashion")
		voltages = fs.String("voltages", "", "comma-separated supply voltages (default: configured voltage)")
		bers     = fs.String("bers", "", "comma-separated BER thresholds (default: configured schedule)")
		models   = fs.String("models", "", "comma-separated error models (uniform,bitline,wordline,data-dependent)")
		policies = fs.String("policies", "", "comma-separated mapping policies (baseline,sparkxd)")
		bitw     = fs.String("bitwidths", "", "comma-separated stored-weight bitwidths (16,32; default: configured quantization)")
		prunes   = fs.String("prune", "", "comma-separated prune levels in [0,1) (default: unpruned)")
		encoders = fs.String("encoders", "", "comma-separated spike encoders (rate,rate-det,ttfs,rank-order,phase,burst)")
		trainN   = fs.Int("train", 300, "training samples")
		testN    = fs.Int("test", 128, "test samples")
		epochs   = fs.Int("epochs", 2, "error-free training epochs")
		seed     = fs.Uint64("seed", 1, "random seed")
		workers  = fs.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		jsonOut  = fs.Bool("json", false, "emit the SweepReport as JSON on stdout")
		artDir   = fs.String("artifacts", "", "directory or store URL to persist the model and sweep report")
		resume   = fs.String("resume", "", "directory or store URL with a persisted improved model to sweep (skips training)")
		quiet    = fs.Bool("quiet", false, "suppress progress events on stderr")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	fl, err := sparkxd.ParseDataset(*flavor)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
		return 2
	}
	spec := sparkxd.SweepSpec{Workers: *workers}
	if spec.Voltages, err = parseFloatList(*voltages); err != nil {
		fmt.Fprintf(stderr, "sparkxd sweep: -voltages: %v\n", err)
		return 2
	}
	if spec.BERs, err = parseFloatList(*bers); err != nil {
		fmt.Fprintf(stderr, "sparkxd sweep: -bers: %v\n", err)
		return 2
	}
	for _, tok := range splitList(*models) {
		m, err := sparkxd.ParseErrorModel(tok)
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
			return 2
		}
		spec.ErrorModels = append(spec.ErrorModels, m)
	}
	for _, tok := range splitList(*policies) {
		pol, err := sparkxd.ParsePolicy(tok)
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
			return 2
		}
		spec.Policies = append(spec.Policies, pol)
	}
	if spec.Bitwidths, err = parseIntList(*bitw); err != nil {
		fmt.Fprintf(stderr, "sparkxd sweep: -bitwidths: %v\n", err)
		return 2
	}
	if spec.PruneLevels, err = parseFloatList(*prunes); err != nil {
		fmt.Fprintf(stderr, "sparkxd sweep: -prune: %v\n", err)
		return 2
	}
	for _, tok := range splitList(*encoders) {
		enc, err := sparkxd.ParseEncoder(tok)
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
			return 2
		}
		spec.Encoders = append(spec.Encoders, enc)
	}

	opts := []sparkxd.Option{
		sparkxd.WithNeurons(*neurons),
		sparkxd.WithDataset(fl),
		sparkxd.WithSampleBudget(*trainN, *testN),
		sparkxd.WithBaseEpochs(*epochs),
		sparkxd.WithSeed(*seed),
	}
	if !*quiet && !*jsonOut {
		opts = append(opts, sparkxd.WithObserver(func(ev sparkxd.Event) {
			if ev.Phase == "start" || ev.Phase == "done" {
				fmt.Fprintf(stderr, "%s: %-8s %s\n", ev.Phase, ev.Stage, ev.Message)
			}
		}))
	}
	sys, err := sparkxd.New(opts...)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
		return 2
	}
	// Reject a malformed grid before spending time training.
	if err := sys.ValidateSweep(spec); err != nil {
		fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
		return 2
	}

	p := sys.Pipeline()
	if *resume != "" {
		rd, err := openResumeDir(*resume)
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
			return 1
		}
		if rd != nil {
			m, err := rd.model(*neurons, fl, *trainN, *testN, *seed)
			if err != nil {
				fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
				return 1
			}
			if m != nil {
				p.Improved = m
				fmt.Fprintf(stderr, "resume: loaded improved model (%s, N%d)\n", m.Dataset, m.Neurons)
			}
		}
	}
	if p.Improved == nil {
		// Train the same fault-aware improved model a -resume run loads,
		// so fresh and resumed sweeps evaluate comparable models.
		if _, err := p.Train(ctx); err != nil {
			fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
			return 1
		}
		if _, err := p.ImproveTolerance(ctx); err != nil {
			fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
			return 1
		}
	}
	rep, err := p.Sweep(ctx, spec)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
		return 1
	}
	if *artDir != "" {
		// Persist through the content-addressed store (plus the manifest
		// -resume reads), recording the swept model next to its report.
		st, err := sparkxd.OpenStore(*artDir)
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
			return 1
		}
		roles := map[string]sparkxd.ArtifactKey{}
		for role, v := range map[string]any{"improved": p.Improved, "sweep": rep} {
			key, err := sparkxd.PutArtifact(st, v)
			if err != nil {
				fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
				return 1
			}
			roles[role] = key
		}
		if err := writeManifest(*artDir, roles); err != nil {
			fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
			return 1
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "sparkxd sweep: %v\n", err)
			return 1
		}
		return 0
	}
	tb := report.NewTable(fmt.Sprintf("scenario sweep: N%d on %s (%d scenarios)", rep.Neurons, rep.Dataset, len(rep.Points)),
		"scenario", "eff. BERth", "safe", "flips", "accuracy", "energy [mJ]", "hit rate")
	for _, pt := range rep.Points {
		tb.AddRow(pt.Key, fmt.Sprintf("%.0e", pt.EffectiveBERth), pt.SafeSubarrays,
			pt.FlippedBits, report.Pct(pt.Accuracy), pt.EnergyMJ, report.Pct(pt.HitRate))
	}
	tb.Render(stdout)
	return 0
}

// splitList splits a comma-separated flag value, dropping empty tokens.
func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// parseFloatList parses a comma-separated list of floats.
func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, tok := range splitList(s) {
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseIntList parses a comma-separated list of integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, tok := range splitList(s) {
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func runSingle(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd single", flag.ContinueOnError)
	var (
		neurons   = fs.Int("neurons", 400, "excitatory neurons (paper: 400/900/1600/2500/3600)")
		flavor    = fs.String("dataset", "mnist", "dataset flavour: mnist or fashion")
		voltage   = fs.Float64("voltage", 1.025, "approximate-DRAM supply voltage [V]")
		trainN    = fs.Int("train", 300, "training samples")
		testN     = fs.Int("test", 128, "test samples")
		epochs    = fs.Int("epochs", 2, "error-free training epochs")
		seed      = fs.Uint64("seed", 1, "random seed")
		quiet     = fs.Bool("quiet", false, "suppress progress events on stderr")
		artifacts = fs.String("artifacts", "", "directory or store URL to persist stage artifacts (model, tolerance, placement)")
		resume    = fs.String("resume", "", "directory or store URL with persisted artifacts to resume from (skips training)")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	fl, err := sparkxd.ParseDataset(*flavor)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd: %v\n", err)
		return 2
	}

	opts := []sparkxd.Option{
		sparkxd.WithNeurons(*neurons),
		sparkxd.WithDataset(fl),
		sparkxd.WithVoltage(*voltage),
		sparkxd.WithSampleBudget(*trainN, *testN),
		sparkxd.WithBaseEpochs(*epochs),
		sparkxd.WithSeed(*seed),
	}
	if !*quiet {
		opts = append(opts, sparkxd.WithObserver(func(ev sparkxd.Event) {
			if ev.Phase == "progress" && ev.Epochs > 0 {
				fmt.Fprintf(stderr, "progress: %-8s %d/%d\n", ev.Stage, ev.Epoch, ev.Epochs)
			} else if ev.Phase == "done" {
				fmt.Fprintf(stderr, "done:     %-8s %s\n", ev.Stage, ev.Message)
			}
		}))
	}
	sys, err := sparkxd.New(opts...)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd: %v\n", err)
		return 2
	}

	p := sys.Pipeline()
	if *resume != "" {
		rd, err := openResumeDir(*resume)
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd: %v\n", err)
			return 1
		}
		if rd != nil {
			m, err := rd.model(*neurons, fl, *trainN, *testN, *seed)
			if err != nil {
				fmt.Fprintf(stderr, "sparkxd: %v\n", err)
				return 1
			}
			if m != nil {
				p.Improved = m
				fmt.Fprintf(stderr, "resume: loaded improved model (%s, N%d)\n", m.Dataset, m.Neurons)
				// The tolerance report is only reusable together with the
				// model it was measured on; never resume it alone.
				tol, err := rd.tolerance()
				if err != nil {
					fmt.Fprintf(stderr, "sparkxd: %v\n", err)
					return 1
				}
				if tol != nil {
					p.Tolerance = tol
					fmt.Fprintf(stderr, "resume: loaded tolerance report (BERth %.0e)\n", tol.BERth)
				}
			}
		}
	}

	fmt.Fprintf(stdout, "SparkXD: N%d on %s, approximate DRAM at %.3f V\n", *neurons, fl, *voltage)
	res, err := p.Run(ctx)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd: %v\n", err)
		return 1
	}
	if *artifacts != "" {
		if err := saveArtifacts(*artifacts, res); err != nil {
			fmt.Fprintf(stderr, "sparkxd: %v\n", err)
			return 1
		}
	}

	tb := report.NewTable("pipeline result", "metric", "value")
	tb.AddRow("baseline accuracy (accurate DRAM)", report.Pct(res.Improved.BaselineAcc))
	tb.AddRow("improved accuracy (approx DRAM, SparkXD)", report.Pct(res.Evaluation.Accuracy))
	tb.AddRow("maximum tolerable BER", fmt.Sprintf("%.0e", res.Tolerance.BERth))
	tb.AddRow("DRAM energy, baseline @1.350V", fmt.Sprintf("%.4f mJ", res.Energy.Baseline.TotalMJ))
	tb.AddRow("DRAM energy, SparkXD", fmt.Sprintf("%.4f mJ @%.3fV", res.Energy.SparkXD.TotalMJ, res.Energy.SparkXD.Voltage))
	tb.AddRow("DRAM energy savings", report.Pct(res.Energy.Savings))
	tb.AddRow("speed-up (mapping effect)", fmt.Sprintf("%.3fx", res.Energy.Speedup))
	tb.AddRow("row-buffer hit rate (SparkXD)", report.Pct(res.Energy.SparkXD.HitRate))
	tb.Render(stdout)

	curve := report.NewTable("error-tolerance curve of the improved model", "BER", "accuracy")
	for _, pt := range res.Tolerance.Curve {
		curve.AddRow(fmt.Sprintf("%.0e", pt.BER), report.Pct(pt.Acc))
	}
	curve.Render(stdout)
	return 0
}

// An -artifacts location is a content-addressed store plus a manifest
// mapping stage roles ("improved", "tolerance", ...) to the store keys
// of the latest run, so -resume can find "the improved model" without
// knowing its content hash. A directory keeps the manifest in
// manifest.json; a remote store (`sparkxd store serve`) keeps it behind
// GET/PUT /v1/manifest, merged server-side.
const manifestName = "manifest.json"

// writeManifest merges roles into the location's manifest: roles
// persisted by earlier runs (e.g. `single -artifacts` before a
// `sweep -artifacts` into the same location) keep their entries
// unless this run re-recorded them. For a remote store the merge is
// done by the server (one writer, mutex-guarded), so this just PUTs the
// delta.
func writeManifest(location string, roles map[string]sparkxd.ArtifactKey) error {
	if sparkxd.IsStoreURL(location) {
		return putRemoteManifest(location, roles)
	}
	merged, err := readManifest(location)
	if err != nil {
		return err
	}
	if merged == nil {
		merged = make(map[string]sparkxd.ArtifactKey, len(roles))
	}
	for role, key := range roles {
		merged[role] = key
	}
	b, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return fmt.Errorf("write manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(location, manifestName), append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("write manifest: %w", err)
	}
	return nil
}

// readManifest loads the role -> key map; (nil, nil) when the location
// has no manifest (nothing persisted there yet).
func readManifest(location string) (map[string]sparkxd.ArtifactKey, error) {
	if sparkxd.IsStoreURL(location) {
		return getRemoteManifest(location)
	}
	b, err := os.ReadFile(filepath.Join(location, manifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("read manifest: %w", err)
	}
	var roles map[string]sparkxd.ArtifactKey
	if err := json.Unmarshal(b, &roles); err != nil {
		return nil, fmt.Errorf("read manifest %s: %w", filepath.Join(location, manifestName), err)
	}
	return roles, nil
}

// manifestURL derives the manifest endpoint of a remote store base URL.
func manifestURL(base string) string {
	return strings.TrimRight(base, "/") + "/v1/manifest"
}

// getRemoteManifest fetches the role map from a store server; a 404
// means nothing has been persisted there yet.
func getRemoteManifest(base string) (map[string]sparkxd.ArtifactKey, error) {
	resp, err := http.Get(manifestURL(base))
	if err != nil {
		return nil, fmt.Errorf("read manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("read manifest %s: server returned %s", manifestURL(base), resp.Status)
	}
	var roles map[string]sparkxd.ArtifactKey
	if err := json.NewDecoder(resp.Body).Decode(&roles); err != nil {
		return nil, fmt.Errorf("read manifest %s: %w", manifestURL(base), err)
	}
	return roles, nil
}

// putRemoteManifest sends a role delta to a store server, which merges
// it into the stored manifest.
func putRemoteManifest(base string, roles map[string]sparkxd.ArtifactKey) error {
	b, err := json.Marshal(roles)
	if err != nil {
		return fmt.Errorf("write manifest: %w", err)
	}
	req, err := http.NewRequest(http.MethodPut, manifestURL(base), bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("write manifest: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("write manifest: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("write manifest %s: server returned %s", manifestURL(base), resp.Status)
	}
	return nil
}

// resumeDir is an opened -resume directory: its store and manifest,
// read once and shared by the per-artifact loaders.
type resumeDir struct {
	st    sparkxd.ArtifactStore
	roles map[string]sparkxd.ArtifactKey
}

// openResumeDir opens dir's store and manifest. Nothing persisted there
// means "nothing to resume" (nil, nil).
func openResumeDir(dir string) (*resumeDir, error) {
	roles, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if len(roles) == 0 {
		return nil, nil
	}
	st, err := sparkxd.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	return &resumeDir{st: st, roles: roles}, nil
}

// model loads the persisted improved model, or (nil, nil) when the
// manifest has none. A corrupt artifact or a model that does not match
// the requested configuration is an error — silently computing results
// from a mismatched checkpoint would be worse than failing.
func (r *resumeDir) model(neurons int, fl sparkxd.Dataset, trainN, testN int, seed uint64) (*sparkxd.TrainedModel, error) {
	key, ok := r.roles["improved"]
	if !ok {
		return nil, nil
	}
	m, err := sparkxd.GetTrainedModel(r.st, key)
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	if m.Neurons != neurons {
		return nil, fmt.Errorf("resume: %s was trained with %d neurons, but -neurons is %d", key, m.Neurons, neurons)
	}
	if want := fl.String(); m.Dataset != "" && m.Dataset != want {
		return nil, fmt.Errorf("resume: %s was trained on %q, but -dataset is %q", key, m.Dataset, want)
	}
	if m.TrainSamples != 0 && (m.TrainSamples != trainN || m.TestSamples != testN) {
		return nil, fmt.Errorf("resume: %s was measured with -train %d -test %d, but got -train %d -test %d",
			key, m.TrainSamples, m.TestSamples, trainN, testN)
	}
	if m.Seed != seed {
		return nil, fmt.Errorf("resume: %s was trained with -seed %d, but got -seed %d", key, m.Seed, seed)
	}
	return m, nil
}

// tolerance loads the persisted tolerance report, or (nil, nil) when
// the manifest has none.
func (r *resumeDir) tolerance() (*sparkxd.ToleranceReport, error) {
	key, ok := r.roles["tolerance"]
	if !ok {
		return nil, nil
	}
	tol, err := sparkxd.GetToleranceReport(r.st, key)
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	return tol, nil
}

// saveArtifacts persists the resumable stage artifacts into the
// content-addressed store at dir and records their keys in the manifest.
func saveArtifacts(dir string, res *sparkxd.Result) error {
	st, err := sparkxd.OpenStore(dir)
	if err != nil {
		return err
	}
	roles := map[string]sparkxd.ArtifactKey{}
	for role, v := range map[string]any{
		"improved":   res.Improved,
		"tolerance":  res.Tolerance,
		"placement":  res.Placement,
		"evaluation": res.Evaluation,
		"energy":     res.Energy,
	} {
		key, err := sparkxd.PutArtifact(st, v)
		if err != nil {
			return fmt.Errorf("save %s: %w", role, err)
		}
		roles[role] = key
	}
	return writeManifest(dir, roles)
}
