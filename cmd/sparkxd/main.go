// Command sparkxd runs the end-to-end SparkXD pipeline (Fig. 7 of the
// paper) on one network configuration: train a baseline SNN, improve its
// error tolerance with fault-aware training (Algorithm 1), find the
// maximum tolerable BER, map the weights into safe subarrays of the
// approximate DRAM (Algorithm 2), and report accuracy, DRAM energy, and
// throughput.
//
// Usage:
//
//	sparkxd -neurons 400 -dataset mnist -voltage 1.025
//
//	sparkxd run -neurons 200,400 -datasets mnist,fashion -workers 4
//	sparkxd run -shard 1/2 -json
//
// The run subcommand sweeps a grid of (dataset, network size) pipeline
// configurations as jobs of the internal/sched work-stealing scheduler.
// With -json, one deterministic result record per configuration is
// written to stdout (byte-identical for any -workers value or -shard
// split) and timing records go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/report"
	"sparkxd/internal/sched"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "run" {
		os.Exit(runSuite(os.Args[2:]))
	}
	singleRun()
}

// pipelineRecord is the deterministic per-configuration record emitted
// on stdout in -json mode (no timing: it must be byte-identical across
// worker counts).
type pipelineRecord struct {
	Job         string  `json:"job"`
	OK          bool    `json:"ok"`
	Error       string  `json:"error,omitempty"`
	Neurons     int     `json:"neurons,omitempty"`
	Dataset     string  `json:"dataset,omitempty"`
	Voltage     float64 `json:"voltage,omitempty"`
	BaselineAcc float64 `json:"baseline_acc,omitempty"`
	ImprovedAcc float64 `json:"improved_acc,omitempty"`
	BERth       float64 `json:"ber_th,omitempty"`
	EnergyMJ    float64 `json:"energy_mj,omitempty"`
	Savings     float64 `json:"savings,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
}

func runSuite(args []string) int {
	fs := flag.NewFlagSet("sparkxd run", flag.ExitOnError)
	var (
		neurons   = fs.String("neurons", "200,400", "comma-separated excitatory neuron counts")
		flavors   = fs.String("datasets", "mnist,fashion", "comma-separated dataset flavours (mnist, fashion)")
		voltage   = fs.Float64("voltage", 1.025, "approximate-DRAM supply voltage [V]")
		trainN    = fs.Int("train", 300, "training samples")
		testN     = fs.Int("test", 128, "test samples")
		epochs    = fs.Int("epochs", 2, "error-free training epochs")
		seed      = fs.Uint64("seed", 1, "random seed")
		workers   = fs.Int("workers", 0, "scheduler worker pool size (0 = GOMAXPROCS)")
		shardSpec = fs.String("shard", "", "run only slice i/m of the sweep (e.g. 1/2)")
		jsonOut   = fs.Bool("json", false, "emit JSON result records on stdout, timing records on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	shard, err := sched.ParseShard(*shardSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparkxd run: %v\n", err)
		return 2
	}

	var sizes []int
	for _, tok := range strings.Split(*neurons, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "sparkxd run: bad neuron count %q\n", tok)
			return 2
		}
		sizes = append(sizes, n)
	}
	var fls []dataset.Flavor
	for _, tok := range strings.Split(*flavors, ",") {
		switch strings.TrimSpace(tok) {
		case "mnist":
			fls = append(fls, dataset.MNISTLike)
		case "fashion":
			fls = append(fls, dataset.FashionLike)
		default:
			fmt.Fprintf(os.Stderr, "sparkxd run: unknown dataset %q (mnist|fashion)\n", tok)
			return 2
		}
	}

	s, err := sched.New(sched.Config{Workers: *workers, Shard: shard, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparkxd run: %v\n", err)
		return 2
	}
	type jobCfg struct {
		name string
		cfg  core.RunConfig
	}
	var cfgs []jobCfg
	for _, fl := range fls {
		for _, n := range sizes {
			cfg := core.DefaultRunConfig(n)
			cfg.Flavor = fl
			cfg.Voltage = *voltage
			cfg.TrainN = *trainN
			cfg.TestN = *testN
			cfg.BaseEpochs = *epochs
			cfg.NetworkSeed = *seed
			cfgs = append(cfgs, jobCfg{name: fmt.Sprintf("pipeline/%s/N%04d", fl, n), cfg: cfg})
		}
	}
	for _, jc := range cfgs {
		jc := jc
		// Larger networks dominate the runtime: use the neuron count as
		// the cost hint so big configurations start first.
		err := s.Add(sched.Job{Name: jc.name, Cost: float64(jc.cfg.Neurons),
			Run: func(*sched.Ctx) (any, error) {
				// One framework per job: RunConfig evaluation is
				// read-only on the framework, but isolation is free here.
				return core.NewFramework().Run(jc.cfg)
			}})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sparkxd run: %v\n", err)
			return 2
		}
	}

	reports, runErr := s.Run()
	byName := make(map[string]jobCfg, len(cfgs))
	for _, jc := range cfgs {
		byName[jc.name] = jc
	}

	if *jsonOut {
		out := json.NewEncoder(os.Stdout)
		diag := json.NewEncoder(os.Stderr)
		for _, rep := range reports {
			rec := pipelineRecord{Job: rep.Name}
			if rep.Err != nil {
				rec.Error = report.FirstLine(rep.Err.Error())
			} else if res, ok := rep.Value.(*core.RunResult); ok {
				jc := byName[rep.Name]
				rec.OK = true
				rec.Neurons = jc.cfg.Neurons
				rec.Dataset = jc.cfg.Flavor.String()
				rec.Voltage = jc.cfg.Voltage
				rec.BaselineAcc = res.BaselineAcc
				rec.ImprovedAcc = res.ImprovedAcc
				rec.BERth = res.BERth
				rec.EnergyMJ = res.EnergySparkXD.TotalMJ()
				rec.Savings = res.EnergySavings()
				rec.Speedup = res.Speedup
			}
			_ = out.Encode(rec)
		}
		for _, rep := range reports {
			_ = diag.Encode(struct {
				Job       string  `json:"job"`
				ElapsedMS float64 `json:"elapsed_ms"`
				Worker    int     `json:"worker"`
			}{rep.Name, float64(rep.Elapsed.Microseconds()) / 1000, rep.Worker})
		}
	} else {
		ordered := append([]sched.Report(nil), reports...)
		sort.Slice(ordered, func(a, b int) bool { return ordered[a].Name < ordered[b].Name })
		tb := report.NewTable(fmt.Sprintf("pipeline sweep @%.3fV (shard %s)", *voltage, shard),
			"configuration", "baseline acc", "improved acc", "BERth", "energy [mJ]", "savings", "speed-up")
		for _, rep := range ordered {
			if rep.Err != nil {
				tb.AddRow(rep.Name, "FAILED: "+report.FirstLine(rep.Err.Error()), "", "", "", "", "")
				continue
			}
			res := rep.Value.(*core.RunResult)
			tb.AddRow(rep.Name, report.Pct(res.BaselineAcc), report.Pct(res.ImprovedAcc),
				fmt.Sprintf("%.0e", res.BERth), res.EnergySparkXD.TotalMJ(),
				report.Pct(res.EnergySavings()), fmt.Sprintf("%.3fx", res.Speedup))
		}
		tb.Render(os.Stdout)
		for _, rep := range ordered {
			if rep.Err == nil {
				fmt.Fprintf(os.Stderr, "timing: %-24s %8.1f ms (worker %d)\n",
					rep.Name, float64(rep.Elapsed.Microseconds())/1000, rep.Worker)
			}
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "sparkxd run: %v\n", report.FirstLine(runErr.Error()))
		return 1
	}
	return 0
}

func singleRun() {
	var (
		neurons = flag.Int("neurons", 400, "excitatory neurons (paper: 400/900/1600/2500/3600)")
		flavor  = flag.String("dataset", "mnist", "dataset flavour: mnist or fashion")
		voltage = flag.Float64("voltage", 1.025, "approximate-DRAM supply voltage [V]")
		trainN  = flag.Int("train", 300, "training samples")
		testN   = flag.Int("test", 128, "test samples")
		epochs  = flag.Int("epochs", 2, "error-free training epochs")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	fl := dataset.MNISTLike
	switch *flavor {
	case "mnist":
	case "fashion":
		fl = dataset.FashionLike
	default:
		fmt.Fprintf(os.Stderr, "sparkxd: unknown dataset %q (mnist|fashion)\n", *flavor)
		os.Exit(2)
	}

	cfg := core.DefaultRunConfig(*neurons)
	cfg.Flavor = fl
	cfg.Voltage = *voltage
	cfg.TrainN = *trainN
	cfg.TestN = *testN
	cfg.BaseEpochs = *epochs
	cfg.NetworkSeed = *seed

	fmt.Printf("SparkXD: N%d on %s, approximate DRAM at %.3f V\n", *neurons, fl, *voltage)
	f := core.NewFramework()
	res, err := f.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sparkxd: %v\n", err)
		os.Exit(1)
	}

	tb := report.NewTable("pipeline result", "metric", "value")
	tb.AddRow("baseline accuracy (accurate DRAM)", report.Pct(res.BaselineAcc))
	tb.AddRow("improved accuracy (approx DRAM, SparkXD)", report.Pct(res.ImprovedAcc))
	tb.AddRow("maximum tolerable BER", fmt.Sprintf("%.0e", res.BERth))
	tb.AddRow("DRAM energy, baseline @1.350V", fmt.Sprintf("%.4f mJ", res.EnergyBaseline.TotalMJ()))
	tb.AddRow("DRAM energy, SparkXD", fmt.Sprintf("%.4f mJ @%.3fV", res.EnergySparkXD.TotalMJ(), res.EnergySparkXD.Voltage))
	tb.AddRow("DRAM energy savings", report.Pct(res.EnergySavings()))
	tb.AddRow("speed-up (mapping effect)", fmt.Sprintf("%.3fx", res.Speedup))
	tb.AddRow("row-buffer hit rate (SparkXD)", report.Pct(res.EnergySparkXD.Stats.HitRate()))
	tb.Render(os.Stdout)

	curve := report.NewTable("error-tolerance curve of the improved model", "BER", "accuracy")
	for _, p := range res.Curve {
		curve.AddRow(fmt.Sprintf("%.0e", p.BER), report.Pct(p.Acc))
	}
	curve.Render(os.Stdout)
}
