package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"sparkxd"
	"sparkxd/internal/store"
)

// runStore dispatches the `sparkxd store` subcommands. Today there is
// one: `store serve`, which exposes a local artifact store over the
// same GET/PUT /v1/artifacts wire a coordinator speaks, so a federation
// of coordinators, workers, and CLI runs can share one remote store.
func runStore(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "sparkxd store: missing subcommand (want: serve)")
		return 2
	}
	switch args[0] {
	case "serve":
		return runStoreServe(ctx, args[1:], stdout, stderr)
	case "-h", "--help", "help":
		fmt.Fprintln(stdout, "Usage: sparkxd store serve [flags]")
		return 0
	default:
		fmt.Fprintf(stderr, "sparkxd store: unknown subcommand %q (want: serve)\n", args[0])
		return 2
	}
}

// runStoreServe serves a local artifact store over HTTP: integrity-
// verified GET /v1/artifacts/{key}, idempotent PUT /v1/artifacts/{key},
// kind listings on GET /v1/artifacts, plus GET/PUT /v1/manifest so
// `-artifacts http://...` CLI runs can record and resume role → key
// maps remotely. The listening address is printed on stdout
// ("listening on http://HOST:PORT") like `sparkxd serve`, so scripts
// can bind -addr to port 0 and discover the port.
func runStoreServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd store serve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8090", "listen address (host:port; port 0 picks a free port)")
		storeDir  = fs.String("store", "", "artifact store directory (empty = in-memory, lost on exit)")
		logLevel  = fs.String("log-level", "info", "structured log threshold on stderr: debug, info, warn, error")
		debugAddr = fs.String("debug-addr", "", "serve pprof and runtime diagnostics on this address (empty = off)")
		quiet     = fs.Bool("quiet", false, "suppress request logs on stderr")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	logger, code := newCLILogger("sparkxd store serve", *quiet, *logLevel, stderr)
	if code != 0 {
		return code
	}
	if *debugAddr != "" {
		stop, ok := startDebugServer(*debugAddr, stdout, stderr)
		if !ok {
			return 1
		}
		defer stop()
	}

	var st sparkxd.ArtifactStore
	if *storeDir != "" {
		var err error
		if st, err = sparkxd.OpenStore(*storeDir); err != nil {
			fmt.Fprintf(stderr, "sparkxd store serve: %v\n", err)
			return 1
		}
	} else {
		st = sparkxd.MemoryStore()
	}

	mux := http.NewServeMux()
	mux.Handle("/", store.NewHandler(st))
	man := &manifestEndpoint{dir: *storeDir}
	mux.HandleFunc("GET /v1/manifest", man.handleGet)
	mux.HandleFunc("PUT /v1/manifest", man.handlePut)

	var handler http.Handler = logRequests(logger, mux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd store serve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: handler}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutCtx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "sparkxd store serve: %v\n", err)
		return 1
	}
	<-done
	return 0
}

// manifestEndpoint serves the shared role → key manifest of a store
// server. Writes merge server-side under one mutex, so concurrent
// `-artifacts http://...` runs interleave without losing roles (the
// same merge a directory store gets from writeManifest). A dir-backed
// endpoint persists through manifest.json next to the artifacts; an
// in-memory one lives and dies with the process, like its store.
type manifestEndpoint struct {
	mu  sync.Mutex
	dir string
	mem map[string]sparkxd.ArtifactKey
}

func (m *manifestEndpoint) handleGet(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	roles, err := m.load()
	m.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if len(roles) == 0 {
		http.Error(w, "no manifest", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	b, _ := json.MarshalIndent(roles, "", "  ")
	w.Write(append(b, '\n'))
}

func (m *manifestEndpoint) handlePut(w http.ResponseWriter, r *http.Request) {
	var delta map[string]sparkxd.ArtifactKey
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&delta); err != nil {
		http.Error(w, "bad manifest body: "+err.Error(), http.StatusBadRequest)
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	roles, err := m.load()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if roles == nil {
		roles = make(map[string]sparkxd.ArtifactKey, len(delta))
	}
	for role, key := range delta {
		roles[role] = key
	}
	if err := m.save(roles); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// load reads the current manifest (caller holds m.mu).
func (m *manifestEndpoint) load() (map[string]sparkxd.ArtifactKey, error) {
	if m.dir == "" {
		return m.mem, nil
	}
	return readManifest(m.dir)
}

// save persists the merged manifest (caller holds m.mu).
func (m *manifestEndpoint) save(roles map[string]sparkxd.ArtifactKey) error {
	if m.dir == "" {
		m.mem = roles
		return nil
	}
	return writeManifest(m.dir, roles)
}

// logRequests emits one structured line per request — method, path,
// status, payload size, and duration — the store server's request-level
// observability story.
func logRequests(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		lw := &loggedResponse{ResponseWriter: rw, status: http.StatusOK}
		next.ServeHTTP(lw, r)
		log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", lw.status,
			"bytes", lw.bytes,
			"duration_ms", float64(time.Since(start).Microseconds())/1000)
	})
}

type loggedResponse struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (l *loggedResponse) WriteHeader(code int) {
	l.status = code
	l.ResponseWriter.WriteHeader(code)
}

func (l *loggedResponse) Write(b []byte) (int, error) {
	n, err := l.ResponseWriter.Write(b)
	l.bytes += n
	return n, err
}
