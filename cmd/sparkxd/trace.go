package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sparkxd"
	"sparkxd/client"
)

// runTrace fetches a job's assembled distributed trace from
// GET /v1/jobs/{id}/trace and renders it as an ASCII waterfall: one row
// per span, indented by parent nesting, with a bar scaled to the root
// span's duration. Traces assemble when a job reaches a terminal state,
// so a queued or running job has none yet. -json dumps the raw JobTrace
// artifact payload instead, for scripts.
func runTrace(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd trace", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "job service base URL")
		asJSON  = fs.Bool("json", false, "print the raw trace JSON instead of the waterfall")
		noAttrs = fs.Bool("no-attrs", false, "omit span attributes from the waterfall")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "Usage: sparkxd trace [flags] <jobID>")
		fs.PrintDefaults()
	}
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "sparkxd trace: exactly one job ID is required")
		return 2
	}
	id := fs.Arg(0)
	c, err := client.New(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd trace: %v\n", err)
		return 2
	}
	tr, err := c.Trace(ctx, id)
	if err != nil {
		if errors.Is(err, client.ErrNotFound) {
			fmt.Fprintf(stderr, "sparkxd trace: no trace for job %s (unknown job, or not terminal yet)\n", id)
		} else {
			fmt.Fprintf(stderr, "sparkxd trace: %v\n", err)
		}
		return 1
	}
	if *asJSON {
		printJSON(stdout, tr)
		return 0
	}
	renderWaterfall(stdout, tr, !*noAttrs)
	return 0
}

// renderWaterfall prints one trace as an indented span tree with a
// duration bar per row, scaled so the earliest span start is column 0
// and the latest span end is the full bar width. Orphan spans (parent
// not in the trace, e.g. the client's submit span context) root the
// tree.
func renderWaterfall(w io.Writer, tr *sparkxd.JobTrace, withAttrs bool) {
	fmt.Fprintf(w, "trace %s  job %s  state %s  (%d spans, %d processes)\n",
		tr.TraceID, tr.JobID, tr.State, len(tr.Spans), len(tr.Processes()))
	if len(tr.Spans) == 0 {
		return
	}

	// Time bounds over all spans; instant spans still get one tick.
	min, max := tr.Spans[0].StartUnixNano, tr.Spans[0].EndUnixNano()
	for _, sp := range tr.Spans {
		if sp.StartUnixNano < min {
			min = sp.StartUnixNano
		}
		if end := sp.EndUnixNano(); end > max {
			max = end
		}
	}
	total := max - min
	if total <= 0 {
		total = 1
	}

	// Build the parent → children tree in canonical (sorted) order.
	byID := make(map[string]int, len(tr.Spans))
	for i, sp := range tr.Spans {
		byID[sp.SpanID] = i
	}
	children := make(map[int][]int)
	var roots []int
	for i, sp := range tr.Spans {
		if p, ok := byID[sp.Parent]; ok && p != i {
			children[p] = append(children[p], i)
		} else {
			roots = append(roots, i)
		}
	}

	// Label column width so the bars align.
	width := 0
	var measure func(i, depth int)
	measure = func(i, depth int) {
		if n := 2*depth + len(spanLabel(tr.Spans[i])); n > width {
			width = n
		}
		for _, c := range children[i] {
			measure(c, depth+1)
		}
	}
	for _, r := range roots {
		measure(r, 0)
	}

	const barWidth = 40
	var print func(i, depth int)
	print = func(i, depth int) {
		sp := tr.Spans[i]
		label := strings.Repeat("  ", depth) + spanLabel(sp)
		lo := int((sp.StartUnixNano - min) * barWidth / total)
		hi := int((sp.EndUnixNano() - min) * barWidth / total)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > barWidth {
			hi = barWidth
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) +
			strings.Repeat(" ", barWidth-hi)
		fmt.Fprintf(w, "  %-*s  [%s]  %s\n", width, label, bar,
			formatNanos(sp.DurationNanos))
		if withAttrs && len(sp.Attrs) > 0 {
			fmt.Fprintf(w, "  %-*s    %s\n", width, "", formatAttrs(sp.Attrs))
		}
		for _, c := range children[i] {
			print(c, depth+1)
		}
	}
	for _, r := range roots {
		print(r, 0)
	}
}

// spanLabel is the waterfall row label: "process name".
func spanLabel(sp sparkxd.TraceSpan) string {
	return sp.Process + " " + sp.Name
}

// formatNanos renders a span duration compactly (µs under 1ms, rounded
// time.Duration formatting above).
func formatNanos(n int64) string {
	d := time.Duration(n)
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// formatAttrs renders span attributes as sorted k=v pairs.
func formatAttrs(attrs map[string]string) string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return strings.Join(parts, " ")
}
