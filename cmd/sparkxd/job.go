package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"sparkxd"
	"sparkxd/client"
)

func jobUsage(w io.Writer) {
	fmt.Fprintf(w, `sparkxd job — talk to a running sparkxd job service

Usage:
  sparkxd job <command> -addr http://HOST:PORT [flags]

Commands:
  submit    submit a JobSpec (JSON from -spec file, or stdin with "-")
  status    print one job's status
  wait      poll a job to completion (optionally print one artifact)
  events    stream a job's progress events as JSON lines
  fetch     print a stored artifact's payload by key

Run "sparkxd job <command> -h" for the command's flags.
`)
}

// runJob dispatches the client-side job subcommands.
func runJob(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		jobUsage(stderr)
		return 2
	}
	switch args[0] {
	case "submit":
		return runJobSubmit(ctx, args[1:], stdout, stderr)
	case "status":
		return runJobStatus(ctx, args[1:], stdout, stderr)
	case "wait":
		return runJobWait(ctx, args[1:], stdout, stderr)
	case "events":
		return runJobEvents(ctx, args[1:], stdout, stderr)
	case "fetch":
		return runJobFetch(ctx, args[1:], stdout, stderr)
	case "help", "-h", "--help":
		jobUsage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "sparkxd job: unknown command %q\n\n", args[0])
		jobUsage(stderr)
		return 2
	}
}

// dial builds the client for -addr.
func dial(addr string, stderr io.Writer) (*client.Client, bool) {
	c, err := client.New(addr)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd job: %v\n", err)
		return nil, false
	}
	return c, true
}

func runJobSubmit(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd job submit", flag.ContinueOnError)
	var (
		addr   = fs.String("addr", "http://127.0.0.1:8080", "job service base URL")
		spec   = fs.String("spec", "-", `JobSpec JSON file ("-" = stdin)`)
		idOnly = fs.Bool("id-only", false, "print only the job ID")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	var (
		b   []byte
		err error
	)
	if *spec == "-" {
		b, err = io.ReadAll(os.Stdin)
	} else {
		b, err = os.ReadFile(*spec)
	}
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd job submit: %v\n", err)
		return 1
	}
	var js sparkxd.JobSpec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		fmt.Fprintf(stderr, "sparkxd job submit: decode spec: %v\n", err)
		return 2
	}
	c, ok := dial(*addr, stderr)
	if !ok {
		return 2
	}
	status, err := c.Submit(ctx, js)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd job submit: %v\n", err)
		return 1
	}
	if *idOnly {
		fmt.Fprintln(stdout, status.ID)
		return 0
	}
	printJSON(stdout, status)
	return 0
}

func runJobStatus(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd job status", flag.ContinueOnError)
	var (
		addr = fs.String("addr", "http://127.0.0.1:8080", "job service base URL")
		id   = fs.String("id", "", "job ID")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	if *id == "" {
		fmt.Fprintln(stderr, "sparkxd job status: -id is required")
		return 2
	}
	c, ok := dial(*addr, stderr)
	if !ok {
		return 2
	}
	status, err := c.Job(ctx, *id)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd job status: %v\n", err)
		return 1
	}
	printJSON(stdout, status)
	return 0
}

func runJobWait(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd job wait", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8080", "job service base URL")
		id      = fs.String("id", "", "job ID")
		role    = fs.String("artifact", "", `on success, print this artifact's payload instead of the status (e.g. "sweep")`)
		poll    = fs.Duration("poll", 100*time.Millisecond, "initial status poll interval (backs off exponentially)")
		maxPoll = fs.Duration("max-poll", 2*time.Second, "poll interval backoff cap")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	if *id == "" {
		fmt.Fprintln(stderr, "sparkxd job wait: -id is required")
		return 2
	}
	c, err := client.New(*addr, client.WithPollInterval(*poll))
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd job wait: %v\n", err)
		return 2
	}
	status, err := c.Wait(ctx, *id, client.WaitMaxInterval(*maxPoll))
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd job wait: %v\n", err)
		return 1
	}
	if *role == "" {
		printJSON(stdout, status)
		return 0
	}
	key, ok := status.Artifacts[*role]
	if !ok {
		fmt.Fprintf(stderr, "sparkxd job wait: job %s produced no %q artifact (have: %v)\n",
			*id, *role, artifactRoles(status))
		return 1
	}
	return printArtifactPayload(ctx, c, key, stdout, stderr)
}

func runJobEvents(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd job events", flag.ContinueOnError)
	var (
		addr = fs.String("addr", "http://127.0.0.1:8080", "job service base URL")
		id   = fs.String("id", "", "job ID")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	if *id == "" {
		fmt.Fprintln(stderr, "sparkxd job events: -id is required")
		return 2
	}
	c, ok := dial(*addr, stderr)
	if !ok {
		return 2
	}
	enc := json.NewEncoder(stdout)
	err := c.Events(ctx, *id, func(ev sparkxd.Event) error { return enc.Encode(ev) })
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd job events: %v\n", err)
		return 1
	}
	return 0
}

func runJobFetch(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd job fetch", flag.ContinueOnError)
	var (
		addr = fs.String("addr", "http://127.0.0.1:8080", "job service base URL")
		key  = fs.String("key", "", "artifact key (kind/sha256)")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	if *key == "" {
		fmt.Fprintln(stderr, "sparkxd job fetch: -key is required")
		return 2
	}
	c, ok := dial(*addr, stderr)
	if !ok {
		return 2
	}
	return printArtifactPayload(ctx, c, sparkxd.ArtifactKey(*key), stdout, stderr)
}

// printArtifactPayload fetches one artifact (integrity-verified) and
// prints its payload as indented JSON — byte-identical to what the
// in-process commands emit for the same artifact value, so fetched
// results can be `cmp`-ed against direct runs.
func printArtifactPayload(ctx context.Context, c *client.Client, key sparkxd.ArtifactKey, stdout, stderr io.Writer) int {
	env, err := c.Artifact(ctx, key)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd job: %v\n", err)
		return 1
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, env.Payload, "", "  "); err != nil {
		fmt.Fprintf(stderr, "sparkxd job: %v\n", err)
		return 1
	}
	buf.WriteByte('\n')
	if _, err := stdout.Write(buf.Bytes()); err != nil {
		fmt.Fprintf(stderr, "sparkxd job: %v\n", err)
		return 1
	}
	return 0
}

// printJSON writes v as indented JSON.
func printJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// artifactRoles lists a status's artifact roles for error messages.
func artifactRoles(status *sparkxd.JobStatus) []string {
	roles := make([]string, 0, len(status.Artifacts))
	for role := range status.Artifacts {
		roles = append(roles, role)
	}
	sort.Strings(roles)
	return roles
}
