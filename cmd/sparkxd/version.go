package main

import (
	"fmt"
	"io"

	"sparkxd/internal/version"
)

// runVersion prints the build version the binary was stamped with: the
// module version for released builds, the VCS revision for source
// builds, and the Go toolchain either way. The same string is reported
// by /v1/healthz and stamped on every job's root trace span, so logs,
// traces, and binaries can be correlated after the fact.
func runVersion(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		fmt.Fprintln(stderr, "sparkxd version: takes no arguments")
		return 2
	}
	fmt.Fprintf(stdout, "sparkxd %s\n", version.String())
	return 0
}
