package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// The dispatcher contract, table-driven: unknown subcommands and bad
// flags print usage to stderr and exit 2; help requests print usage to
// stdout and exit 0 — uniformly across subcommands.
func TestDispatcher(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStderr string // substring of stderr ("" = no requirement)
		wantStdout string // substring of stdout ("" = no requirement)
	}{
		{"no args", nil, 2, "Usage:", ""},
		{"unknown command", []string{"bogus"}, 2, `unknown command "bogus"`, ""},
		{"unknown command usage", []string{"bogus"}, 2, "Usage:", ""},
		{"help", []string{"help"}, 0, "", "Usage:"},
		{"-h", []string{"-h"}, 0, "", "Usage:"},
		{"--help", []string{"--help"}, 0, "", "Usage:"},
		{"single -h", []string{"single", "-h"}, 0, "-neurons", ""},
		{"single bad flag", []string{"single", "-no-such-flag"}, 2, "flag provided but not defined", ""},
		{"run bad flag", []string{"run", "-no-such-flag"}, 2, "flag provided but not defined", ""},
		{"run bad shard", []string{"run", "-shard", "nope"}, 2, "shard", ""},
		{"sweep -h", []string{"sweep", "-h"}, 0, "-voltages", ""},
		{"sweep bad dataset", []string{"sweep", "-dataset", "imagenet"}, 2, "valid: mnist, fashion", ""},
		{"sweep bad policy", []string{"sweep", "-policies", "rr"}, 2, "valid: baseline, sparkxd", ""},
		{"serve -h", []string{"serve", "-h"}, 0, "-addr", ""},
		{"serve bad flag", []string{"serve", "-no-such-flag"}, 2, "flag provided but not defined", ""},
		{"serve bad dispatch", []string{"serve", "-dispatch", "quantum"}, 2, "unknown dispatch mode", ""},
		{"worker -h", []string{"worker", "-h"}, 0, "-join", ""},
		{"worker bad flag", []string{"worker", "-no-such-flag"}, 2, "flag provided but not defined", ""},
		{"worker empty join", []string{"worker", "-join", ""}, 2, "empty coordinator URL", ""},
		{"job no subcommand", []string{"job"}, 2, "Usage:", ""},
		{"job unknown subcommand", []string{"job", "bogus"}, 2, `unknown command "bogus"`, ""},
		{"job help", []string{"job", "help"}, 0, "", "Usage:"},
		{"job submit -h", []string{"job", "submit", "-h"}, 0, "-spec", ""},
		{"store no subcommand", []string{"store"}, 2, "missing subcommand", ""},
		{"store unknown subcommand", []string{"store", "bogus"}, 2, `unknown subcommand "bogus"`, ""},
		{"store help", []string{"store", "help"}, 0, "", "store serve"},
		{"store serve -h", []string{"store", "serve", "-h"}, 0, "-addr", ""},
		{"store serve bad flag", []string{"store", "serve", "-no-such-flag"}, 2, "flag provided but not defined", ""},
		{"job status missing id", []string{"job", "status"}, 2, "-id is required", ""},
		{"job wait missing id", []string{"job", "wait"}, 2, "-id is required", ""},
		{"job fetch missing key", []string{"job", "fetch"}, 2, "-key is required", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(context.Background(), tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("run(%q) = %d, want %d\nstderr: %s", tc.args, code, tc.wantCode, stderr.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("run(%q) stderr %q does not contain %q", tc.args, stderr.String(), tc.wantStderr)
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("run(%q) stdout %q does not contain %q", tc.args, stdout.String(), tc.wantStdout)
			}
		})
	}
}

// Usage goes to stderr (not stdout) for errors, and to stdout for
// explicit help — so piping the output of a successful help request
// works while a typo'd invocation stays visible on a terminal.
func TestUsageStream(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if stdout.Len() != 0 {
		t.Errorf("error path wrote to stdout: %q", stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), []string{"help"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if stderr.Len() != 0 {
		t.Errorf("help path wrote to stderr: %q", stderr.String())
	}
}
