package main

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sparkxd/internal/store"
)

// syncBuffer lets the test read stdout while run() is still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startStoreServe launches `sparkxd store serve` on a free port through
// the real CLI entry point and returns its base URL plus the exit-code
// channel (closed after shutdown).
func startStoreServe(t *testing.T, ctx context.Context, extra ...string) (string, <-chan int) {
	t.Helper()
	var stdout syncBuffer
	var stderr bytes.Buffer
	args := append([]string{"store", "serve", "-addr", "127.0.0.1:0", "-quiet"}, extra...)
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, args, &stdout, &stderr)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		out := stdout.String()
		if i := strings.Index(out, "listening on "); i >= 0 {
			rest := out[i+len("listening on "):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				return strings.TrimSpace(rest[:j]), codeCh
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("store serve never announced its address\nstdout: %s\nstderr: %s", out, stderr.String())
		}
		select {
		case code := <-codeCh:
			t.Fatalf("store serve exited early with %d\nstderr: %s", code, stderr.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// The store server round-trips artifacts and manifests over the wire
// and shuts down cleanly on context cancellation.
func TestStoreServeRoundTrip(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, codeCh := startStoreServe(t, ctx)

	cl, err := store.NewHTTP(base, store.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	key, err := cl.Put("cli-note", map[string]int{"n": 42})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := store.Get[map[string]int](cl, key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if (*got)["n"] != 42 {
		t.Errorf("round trip = %v", got)
	}

	// Manifest endpoint: 404 when empty, then PUT delta + GET merge.
	resp, err := http.Get(base + "/v1/manifest")
	if err != nil {
		t.Fatalf("GET manifest: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("empty manifest GET = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/manifest",
		strings.NewReader(`{"result": "`+string(key)+`"}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT manifest: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("PUT manifest = %d, want 204", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/manifest")
	if err != nil {
		t.Fatalf("GET manifest: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), string(key)) {
		t.Errorf("GET manifest = %d %q, want the stored key", resp.StatusCode, buf.String())
	}

	cancel()
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Errorf("store serve exited %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("store serve did not shut down after cancellation")
	}
}

// A dir-backed store server persists artifacts and the manifest across
// restarts.
func TestStoreServePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	ctx1, cancel1 := context.WithCancel(context.Background())
	base, codeCh := startStoreServe(t, ctx1, "-store", dir)
	cl, err := store.NewHTTP(base, store.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	key, err := cl.Put("cli-note", map[string]int{"n": 7})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/manifest",
		strings.NewReader(`{"result": "`+string(key)+`"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT manifest: %v", err)
	}
	resp.Body.Close()
	cancel1()
	<-codeCh

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	base2, _ := startStoreServe(t, ctx2, "-store", dir)
	cl2, err := store.NewHTTP(base2, store.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	if _, err := cl2.Get(key); err != nil {
		t.Errorf("artifact lost across restart: %v", err)
	}
	resp, err = http.Get(base2 + "/v1/manifest")
	if err != nil {
		t.Fatalf("GET manifest: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), string(key)) {
		t.Errorf("manifest lost across restart: %q", buf.String())
	}
}
