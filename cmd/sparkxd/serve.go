package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"sparkxd"
	"sparkxd/internal/sched"
	"sparkxd/internal/server"
)

// runServe starts the HTTP job service: submit pipeline-stage and sweep
// jobs over POST /v1/jobs, poll GET /v1/jobs/{id}, stream progress from
// GET /v1/jobs/{id}/events, and fetch content-addressed artifacts from
// GET /v1/artifacts/{key}. With -dispatch fleet or hybrid the server
// also coordinates `sparkxd worker` processes over the lease protocol
// (POST /v1/leases, heartbeats, uploads). The listening address is
// printed on stdout ("listening on http://HOST:PORT"), so scripts can
// bind -addr to port 0 and discover the port.
//
// SIGINT/SIGTERM triggers a graceful drain: no new leases or local
// batches are started, in-flight jobs get -drain-timeout to finish (the
// HTTP API stays up so workers can still upload and complete), and
// whatever is left is requeued instead of stranded in "running".
//
// With -shard i/m and -peers, the server joins a federation: it owns
// only the job IDs hashing to slice i and answers the rest with 421 +
// the owning peer's address, which clients follow transparently. A
// remote -store URL (see `sparkxd store serve`) lets all members share
// one artifact store — the durable job records there are what a
// replacement coordinator restores and requeues on startup.
func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd serve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		storeDir  = fs.String("store", "", "artifact store directory or remote store URL (empty = in-memory, lost on exit)")
		workers   = fs.Int("workers", 0, "local job execution pool size (0 = GOMAXPROCS)")
		dispatch  = fs.String("dispatch", "local", "who executes jobs: local, fleet (remote workers only), or hybrid")
		leaseTTL  = fs.Duration("lease-ttl", server.DefaultLeaseTTL, "worker lease TTL (silent workers expire and their jobs requeue)")
		drain     = fs.Duration("drain-timeout", 30*time.Second, "how long a signalled server waits for in-flight jobs before requeueing them")
		maxWarm   = fs.Int("max-warm-systems", 0, "bound on cached warm System engines, LRU-evicted (0 = unbounded)")
		rate      = fs.Float64("rate", 0, "per-submitter job submissions per second before 429 (0 = no admission control)")
		burst     = fs.Int("burst", 0, "admission token-bucket burst (0 = max(1, rate))")
		shardSpec = fs.String("shard", "", "own slice i/m of the job-ID space in a federation (e.g. 1/2; needs -peers)")
		peers     = fs.String("peers", "", "comma-separated base URLs of all m federation coordinators, shard order")
		cacheDir  = fs.String("cache", "", "local read-through cache directory in front of a remote -store URL")
		logLevel  = fs.String("log-level", "info", "structured log threshold on stderr: debug, info, warn, error")
		debugAddr = fs.String("debug-addr", "", "serve pprof and runtime diagnostics on this address (empty = off)")
		quiet     = fs.Bool("quiet", false, "suppress job lifecycle logs on stderr")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	mode, err := server.ParseDispatch(*dispatch)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd serve: %v\n", err)
		return 2
	}
	shard, err := sched.ParseShard(*shardSpec)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd serve: %v\n", err)
		return 2
	}

	var st sparkxd.ArtifactStore
	if *storeDir != "" {
		if st, err = sparkxd.OpenStore(*storeDir); err != nil {
			fmt.Fprintf(stderr, "sparkxd serve: %v\n", err)
			return 1
		}
	} else {
		st = sparkxd.MemoryStore()
	}
	if *cacheDir != "" {
		if !sparkxd.IsStoreURL(*storeDir) {
			fmt.Fprintln(stderr, "sparkxd serve: -cache only makes sense in front of a remote -store URL")
			return 2
		}
		cache, err := sparkxd.OpenStore(*cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd serve: %v\n", err)
			return 1
		}
		st = sparkxd.ReadThroughStore(cache, st)
	}
	logger, code := newCLILogger("sparkxd serve", *quiet, *logLevel, stderr)
	if code != 0 {
		return code
	}
	if *debugAddr != "" {
		stop, ok := startDebugServer(*debugAddr, stdout, stderr)
		if !ok {
			return 1
		}
		defer stop()
	}
	srv, err := server.New(server.Config{
		Store:          st,
		Workers:        *workers,
		Dispatch:       mode,
		LeaseTTL:       *leaseTTL,
		MaxWarmSystems: *maxWarm,
		Rate:           *rate,
		Burst:          *burst,
		ShardIndex:     shard.Index,
		ShardCount:     shard.Count,
		Peers:          splitList(*peers),
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd serve: %v\n", err)
		return 1
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd serve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
	if mode != server.DispatchLocal {
		fmt.Fprintf(stdout, "dispatch %s: join workers with `sparkxd worker -join http://%s`\n", mode, ln.Addr())
	}

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		// Drain while the HTTP API is still up: workers need the lease
		// and upload endpoints to finish their in-flight jobs.
		srv.Drain(*drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutCtx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "sparkxd serve: %v\n", err)
		return 1
	}
	<-done
	return 0
}
