package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"sparkxd"
	"sparkxd/internal/store"
	"sparkxd/internal/worker"
)

// runWorker joins a coordinator (`sparkxd serve -dispatch fleet` or
// `hybrid`) as a fleet worker: lease queued jobs, execute them on the
// local pool, stream events back, upload result envelopes, and
// complete. SIGINT/SIGTERM drains: in-flight jobs get -drain-timeout to
// finish; whatever is still running has its lease released so the
// coordinator requeues it immediately.
//
// In a federation, -store points the worker at the shared artifact
// store (a directory or a `sparkxd store serve` URL) so results bypass
// the coordinator's upload endpoint; -cache layers a local read-through
// cache in front of a remote store.
func runWorker(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd worker", flag.ContinueOnError)
	var (
		join      = fs.String("join", "http://127.0.0.1:8080", "coordinator base URL to join")
		workers   = fs.Int("workers", 0, "concurrent job slots (0 = GOMAXPROCS; also sizes the sweep pool)")
		name      = fs.String("name", "", "worker name (default <hostname>-<pid>)")
		poll      = fs.Duration("poll", 500*time.Millisecond, "idle lease poll interval")
		drain     = fs.Duration("drain-timeout", 30*time.Second, "how long a signalled worker keeps finishing in-flight jobs")
		maxWarm   = fs.Int("max-warm-systems", 0, "bound on cached warm System engines, LRU-evicted (0 = unbounded)")
		storeLoc  = fs.String("store", "", "shared artifact store (directory or store URL); empty = upload via the coordinator")
		cacheDir  = fs.String("cache", "", "local read-through cache directory in front of a remote -store URL")
		metrics   = fs.String("metrics", "", "serve Prometheus metrics on this address (host:port; port 0 picks a free port; empty = off)")
		logLevel  = fs.String("log-level", "info", "structured log threshold on stderr: debug, info, warn, error")
		debugAddr = fs.String("debug-addr", "", "serve pprof and runtime diagnostics on this address (empty = off)")
		quiet     = fs.Bool("quiet", false, "suppress lease lifecycle logs on stderr")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}

	logger, code := newCLILogger("sparkxd worker", *quiet, *logLevel, stderr)
	if code != 0 {
		return code
	}
	if *debugAddr != "" {
		stop, ok := startDebugServer(*debugAddr, stdout, stderr)
		if !ok {
			return 1
		}
		defer stop()
	}
	// One transport for both the lease protocol and a remote store, so
	// they share connection pools toward the same hosts; the timeout
	// matches newCoordClient's default client.
	hc := &http.Client{Timeout: 30 * time.Second}
	var st sparkxd.ArtifactStore
	if *storeLoc != "" {
		var err error
		if sparkxd.IsStoreURL(*storeLoc) {
			st, err = sparkxd.RemoteStore(*storeLoc, store.WithHTTPClient(hc))
		} else {
			st, err = sparkxd.OpenStore(*storeLoc)
		}
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd worker: %v\n", err)
			return 1
		}
		if *cacheDir != "" {
			if !sparkxd.IsStoreURL(*storeLoc) {
				fmt.Fprintln(stderr, "sparkxd worker: -cache only makes sense in front of a remote -store URL")
				return 2
			}
			cache, err := sparkxd.OpenStore(*cacheDir)
			if err != nil {
				fmt.Fprintf(stderr, "sparkxd worker: %v\n", err)
				return 1
			}
			st = sparkxd.ReadThroughStore(cache, st)
		}
	} else if *cacheDir != "" {
		fmt.Fprintln(stderr, "sparkxd worker: -cache needs a remote -store URL")
		return 2
	}
	w, err := worker.New(worker.Config{
		Coordinator:    *join,
		Name:           *name,
		Slots:          *workers,
		Poll:           *poll,
		DrainTimeout:   *drain,
		MaxWarmSystems: *maxWarm,
		HTTPClient:     hc,
		Store:          st,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd worker: %v\n", err)
		return 2
	}
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd worker: metrics listen: %v\n", err)
			return 1
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", w.MetricsHandler())
		ms := &http.Server{Handler: mux}
		go func() { _ = ms.Serve(ln) }()
		defer ms.Close()
		fmt.Fprintf(stdout, "metrics on http://%s/metrics\n", ln.Addr())
	}
	fmt.Fprintf(stdout, "worker %s joining %s\n", w.Name(), *join)
	if err := w.Run(ctx); err != nil {
		fmt.Fprintf(stderr, "sparkxd worker: %v\n", err)
		return 1
	}
	return 0
}
