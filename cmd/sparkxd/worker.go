package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"sparkxd/internal/worker"
)

// runWorker joins a coordinator (`sparkxd serve -dispatch fleet` or
// `hybrid`) as a fleet worker: lease queued jobs, execute them on the
// local pool, stream events back, upload result envelopes, and
// complete. SIGINT/SIGTERM drains: in-flight jobs get -drain-timeout to
// finish; whatever is still running has its lease released so the
// coordinator requeues it immediately.
func runWorker(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd worker", flag.ContinueOnError)
	var (
		join    = fs.String("join", "http://127.0.0.1:8080", "coordinator base URL to join")
		workers = fs.Int("workers", 0, "concurrent job slots (0 = GOMAXPROCS; also sizes the sweep pool)")
		name    = fs.String("name", "", "worker name (default <hostname>-<pid>)")
		poll    = fs.Duration("poll", 500*time.Millisecond, "idle lease poll interval")
		drain   = fs.Duration("drain-timeout", 30*time.Second, "how long a signalled worker keeps finishing in-flight jobs")
		maxWarm = fs.Int("max-warm-systems", 0, "bound on cached warm System engines, LRU-evicted (0 = unbounded)")
		metrics = fs.String("metrics", "", "serve Prometheus metrics on this address (host:port; port 0 picks a free port; empty = off)")
		quiet   = fs.Bool("quiet", false, "suppress lease lifecycle logs on stderr")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "worker: "+format+"\n", a...)
	}
	if *quiet {
		logf = nil
	}
	w, err := worker.New(worker.Config{
		Coordinator:    *join,
		Name:           *name,
		Slots:          *workers,
		Poll:           *poll,
		DrainTimeout:   *drain,
		MaxWarmSystems: *maxWarm,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd worker: %v\n", err)
		return 2
	}
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd worker: metrics listen: %v\n", err)
			return 1
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", w.MetricsHandler())
		ms := &http.Server{Handler: mux}
		go func() { _ = ms.Serve(ln) }()
		defer ms.Close()
		fmt.Fprintf(stdout, "metrics on http://%s/metrics\n", ln.Addr())
	}
	fmt.Fprintf(stdout, "worker %s joining %s\n", w.Name(), *join)
	if err := w.Run(ctx); err != nil {
		fmt.Fprintf(stderr, "sparkxd worker: %v\n", err)
		return 1
	}
	return 0
}
