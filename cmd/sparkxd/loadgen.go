package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparkxd"
	"sparkxd/client"
)

// runLoadgen drives a running job service with N concurrent closed-loop
// clients for a fixed duration and prints one deterministic-schema JSON
// report ("sparkxd-loadgen/v1") on stdout: throughput, submit-to-done
// latency percentiles, 429 throttle counts, and a per-priority
// breakdown. Each client submits a job, waits for it to finish, and
// immediately submits the next one, so offered load tracks service
// capacity; admission-control 429s are absorbed by the client's
// Retry-After backoff and only show up in the throttled counter.
//
// Every submitted spec is unique (the seed encodes client and sequence
// number), so the run measures real executions, not idempotent-dedup
// cache hits. The exit code is 1 if any job failed, so smoke scripts
// can assert a clean run without parsing the report.
func runLoadgen(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sparkxd loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "job service base URL")
		clients  = fs.Int("clients", 4, "concurrent closed-loop clients")
		duration = fs.Duration("duration", 10*time.Second, "how long clients keep submitting new jobs")
		mix      = fs.String("mix", "1:0", "single:sweep job mix per client, e.g. 3:1")
		prios    = fs.String("priorities", "0", "comma-separated job priorities, cycled per submission")
		neurons  = fs.Int("neurons", 20, "excitatory neurons per generated job (kept tiny for load testing)")
		bitw     = fs.String("bitwidths", "", "comma-separated bitwidth axis of generated sweep jobs (16,32)")
		prunes   = fs.String("prune", "", "comma-separated prune-level axis of generated sweep jobs")
		encoders = fs.String("encoders", "", "comma-separated encoder axis of generated sweep jobs")
	)
	if code, done := parseFlags(fs, args, stderr); done {
		return code
	}
	if *clients <= 0 {
		fmt.Fprintln(stderr, "sparkxd loadgen: -clients must be positive")
		return 2
	}
	singles, sweeps, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(stderr, "sparkxd loadgen: -mix: %v\n", err)
		return 2
	}
	var priorities []int
	for _, tok := range splitList(*prios) {
		p, err := strconv.Atoi(tok)
		if err != nil || p < sparkxd.MinPriority || p > sparkxd.MaxPriority {
			fmt.Fprintf(stderr, "sparkxd loadgen: -priorities: bad value %q (range %d..%d)\n",
				tok, sparkxd.MinPriority, sparkxd.MaxPriority)
			return 2
		}
		priorities = append(priorities, p)
	}
	if len(priorities) == 0 {
		priorities = []int{0}
	}
	axes := sweepAxes{}
	if axes.bitwidths, err = parseIntList(*bitw); err != nil {
		fmt.Fprintf(stderr, "sparkxd loadgen: -bitwidths: %v\n", err)
		return 2
	}
	if axes.pruneLevels, err = parseFloatList(*prunes); err != nil {
		fmt.Fprintf(stderr, "sparkxd loadgen: -prune: %v\n", err)
		return 2
	}
	for _, tok := range splitList(*encoders) {
		enc, err := sparkxd.ParseEncoder(tok)
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd loadgen: %v\n", err)
			return 2
		}
		axes.encoders = append(axes.encoders, enc)
	}

	var throttled atomic.Uint64
	var (
		mu      sync.Mutex
		samples []loadSample
	)
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for id := 0; id < *clients; id++ {
		cli, err := client.New(*addr,
			client.WithSubmitter(fmt.Sprintf("loadgen-%d", id)),
			client.WithThrottleHook(func(time.Duration) { throttled.Add(1) }))
		if err != nil {
			fmt.Fprintf(stderr, "sparkxd loadgen: %v\n", err)
			return 2
		}
		wg.Add(1)
		go func(id int, cli *client.Client) {
			defer wg.Done()
			for seq := 0; time.Now().Before(deadline) && ctx.Err() == nil; seq++ {
				spec := loadSpec(id, seq, singles, sweeps, priorities, *neurons, axes)
				s := loadSample{priority: spec.Priority}
				t0 := time.Now()
				status, err := cli.Submit(ctx, spec)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					s.err = err
					mu.Lock()
					samples = append(samples, s)
					mu.Unlock()
					fmt.Fprintf(stderr, "loadgen: client %d: submit: %v\n", id, err)
					return
				}
				s.jobID, s.traceID = status.ID, status.TraceID
				// The submit window is closed, but every accepted job is
				// awaited so the report never counts abandoned work.
				if _, err := cli.Wait(ctx, status.ID); err != nil {
					if ctx.Err() != nil && !errors.Is(err, client.ErrJobFailed) {
						return
					}
					s.err = err
				}
				s.latency = time.Since(t0)
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}(id, cli)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := buildLoadReport(samples, *addr, *clients, *mix, elapsed, throttled.Load())
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(stderr, "sparkxd loadgen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "loadgen: %d done, %d failed, %d throttled in %s (%.2f jobs/s, p50 %dms p99 %dms)\n",
		rep.Done, rep.Failed, rep.Throttled, elapsed.Round(time.Millisecond),
		rep.Throughput, rep.Latency.P50, rep.Latency.P99)
	if len(rep.Slowest) > 0 {
		s := rep.Slowest[0]
		fmt.Fprintf(stderr, "loadgen: slowest job %s (%dms) — inspect with `sparkxd trace -addr %s %s`\n",
			s.JobID, s.LatencyMS, *addr, s.JobID)
	}
	if rep.Failed > 0 {
		return 1
	}
	return 0
}

// loadSample is one closed-loop iteration: the job's priority, its
// submit-to-done latency, the failure (if any), and the IDs that let a
// slow sample be chased into its distributed trace afterwards.
type loadSample struct {
	priority int
	latency  time.Duration
	err      error
	jobID    string
	traceID  string
}

// parseMix parses "single:sweep" submission ratios, e.g. "3:1".
func parseMix(s string) (singles, sweeps int, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want single:sweep, e.g. 3:1, got %q", s)
	}
	if singles, err = strconv.Atoi(strings.TrimSpace(a)); err != nil || singles < 0 {
		return 0, 0, fmt.Errorf("bad single count %q", a)
	}
	if sweeps, err = strconv.Atoi(strings.TrimSpace(b)); err != nil || sweeps < 0 {
		return 0, 0, fmt.Errorf("bad sweep count %q", b)
	}
	if singles+sweeps == 0 {
		return 0, 0, fmt.Errorf("mix %q submits nothing", s)
	}
	return singles, sweeps, nil
}

// sweepAxes is the optional extended-axis grid generated sweep jobs
// carry (-bitwidths/-prune/-encoders).
type sweepAxes struct {
	bitwidths   []int
	pruneLevels []float64
	encoders    []sparkxd.Encoder
}

// loadSpec builds the seq-th job of one client: the first `singles`
// slots of each mix cycle are pipeline-train jobs, the rest tiny
// sweeps. The seed encodes (client, seq) so every spec is distinct
// work, and priorities cycle so the run exercises the priority queue.
func loadSpec(id, seq, singles, sweeps int, priorities []int, neurons int, axes sweepAxes) sparkxd.JobSpec {
	cfg := sparkxd.ConfigSpec{
		Neurons:      neurons,
		TrainSamples: 20,
		TestSamples:  10,
		BaseEpochs:   1,
		BERSchedule:  []float64{1e-5},
		Seed:         uint64(id)<<32 | uint64(seq+1),
	}
	spec := sparkxd.JobSpec{
		Kind:     sparkxd.JobPipeline,
		Stage:    "train",
		Config:   cfg,
		Priority: priorities[seq%len(priorities)],
	}
	if seq%(singles+sweeps) >= singles {
		spec.Kind = sparkxd.JobSweep
		spec.Stage = ""
		spec.Sweep = &sparkxd.SweepSpec{
			Voltages:    []float64{1.1},
			BERs:        []float64{1e-5},
			ErrorModels: []sparkxd.ErrorModel{sparkxd.ErrorModelUniform},
			Policies:    []sparkxd.Policy{sparkxd.PolicySparkXD},
			Bitwidths:   axes.bitwidths,
			PruneLevels: axes.pruneLevels,
			Encoders:    axes.encoders,
		}
	}
	return spec
}

// loadReport is the stable JSON schema loadgen prints on stdout.
// Consumers key on Schema; field order and names are part of the
// contract (scripts/loadgen-smoke.sh parses them).
type loadReport struct {
	Schema     string         `json:"schema"`
	Addr       string         `json:"addr"`
	Clients    int            `json:"clients"`
	Mix        string         `json:"mix"`
	DurationS  float64        `json:"duration_s"`
	Submitted  int            `json:"submitted"`
	Done       int            `json:"done"`
	Failed     int            `json:"failed"`
	Throttled  uint64         `json:"throttled_429"`
	Throughput float64        `json:"throughput_jobs_per_s"`
	Latency    latencySummary `json:"latency_ms"`
	PerPrio    []prioReport   `json:"per_priority"`
	// Slowest names the jobs in the p99 latency tail with their trace
	// IDs, so a bad percentile leads straight to `sparkxd trace <job>`
	// waterfalls instead of a needle-in-haystack log hunt.
	Slowest []slowJob `json:"slowest"`
}

type latencySummary struct {
	P50 int64 `json:"p50"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
}

type prioReport struct {
	Priority  int   `json:"priority"`
	Submitted int   `json:"submitted"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	P50       int64 `json:"latency_ms_p50"`
}

// slowJob is one p99-tail sample: enough identity to fetch its status
// and distributed trace from the service after the run.
type slowJob struct {
	JobID     string `json:"job_id"`
	TraceID   string `json:"trace_id,omitempty"`
	Priority  int    `json:"priority"`
	LatencyMS int64  `json:"latency_ms"`
}

func buildLoadReport(samples []loadSample, addr string, clients int, mix string, elapsed time.Duration, throttled uint64) loadReport {
	rep := loadReport{
		Schema:    "sparkxd-loadgen/v1",
		Addr:      addr,
		Clients:   clients,
		Mix:       mix,
		DurationS: elapsed.Seconds(),
		Submitted: len(samples),
		Throttled: throttled,
	}
	var all []time.Duration
	byPrio := map[int]*prioReport{}
	perPrioLats := map[int][]time.Duration{}
	for _, s := range samples {
		pr := byPrio[s.priority]
		if pr == nil {
			pr = &prioReport{Priority: s.priority}
			byPrio[s.priority] = pr
		}
		pr.Submitted++
		if s.err != nil {
			rep.Failed++
			pr.Failed++
			continue
		}
		rep.Done++
		pr.Done++
		all = append(all, s.latency)
		perPrioLats[s.priority] = append(perPrioLats[s.priority], s.latency)
	}
	rep.Latency = latencySummary{
		P50: percentileMS(all, 0.50),
		P95: percentileMS(all, 0.95),
		P99: percentileMS(all, 0.99),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(rep.Done) / secs
	}
	for p, pr := range byPrio {
		pr.P50 = percentileMS(perPrioLats[p], 0.50)
		rep.PerPrio = append(rep.PerPrio, *pr)
	}
	sort.Slice(rep.PerPrio, func(a, b int) bool { return rep.PerPrio[a].Priority < rep.PerPrio[b].Priority })
	if rep.PerPrio == nil {
		rep.PerPrio = []prioReport{} // schema stability: [] not null
	}
	rep.Slowest = slowestJobs(samples, rep.Latency.P99)
	return rep
}

// slowestJobs returns the completed samples at or above the p99 latency
// (capped at 5, slowest first) with their job and trace IDs.
func slowestJobs(samples []loadSample, p99MS int64) []slowJob {
	var tail []loadSample
	for _, s := range samples {
		if s.err == nil && s.jobID != "" && s.latency.Milliseconds() >= p99MS {
			tail = append(tail, s)
		}
	}
	sort.Slice(tail, func(a, b int) bool { return tail[a].latency > tail[b].latency })
	if len(tail) > 5 {
		tail = tail[:5]
	}
	out := make([]slowJob, 0, len(tail))
	for _, s := range tail {
		out = append(out, slowJob{
			JobID:     s.jobID,
			TraceID:   s.traceID,
			Priority:  s.priority,
			LatencyMS: s.latency.Milliseconds(),
		})
	}
	return out
}

// percentileMS is the nearest-rank percentile of lats in integer
// milliseconds; 0 when no samples completed.
func percentileMS(lats []time.Duration, q float64) int64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Milliseconds()
}
