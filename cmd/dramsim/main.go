// Command dramsim is a standalone approximate-DRAM simulator built on
// the public sparkxd SDK: it places a weight image of the requested size
// with either mapping policy, replays the inference access stream
// through the memory controller at a chosen supply voltage, and prints
// the access census, command counts, timing, and the DRAMPower-style
// energy breakdown. With -trace it also dumps the command trace (time,
// command, bank, row/col), one line per command.
//
// Usage:
//
//	dramsim -weights 705600 -policy sparkxd -voltage 1.1 -berth 1e-4
//	dramsim -weights 313600 -policy baseline -trace
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"sparkxd"
	"sparkxd/internal/report"
)

func main() {
	var (
		weights = flag.Int("weights", 784*900, "number of FP32 weights to stream")
		policy  = flag.String("policy", "baseline", "mapping policy: baseline or sparkxd")
		voltage = flag.Float64("voltage", 1.35, "DRAM supply voltage [V]")
		berth   = flag.Float64("berth", 1e-3, "max tolerable BER (sparkxd policy only)")
		trace   = flag.Bool("trace", false, "dump the DRAM command trace to stdout")
	)
	flag.Parse()

	var pol sparkxd.Policy
	switch *policy {
	case "baseline":
		pol = sparkxd.PolicyBaseline
	case "sparkxd":
		pol = sparkxd.PolicySparkXD
	default:
		fmt.Fprintf(os.Stderr, "dramsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	sys, err := sparkxd.New()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dramsim: %v\n", err)
		os.Exit(1)
	}

	req := sparkxd.StreamRequest{
		WeightCount: *weights,
		Policy:      pol,
		Voltage:     *voltage,
		BERth:       *berth,
	}
	var w *bufio.Writer
	if *trace {
		w = bufio.NewWriter(os.Stdout)
		defer w.Flush()
		req.OnCommand = func(cmd sparkxd.TraceCommand) {
			switch cmd.Kind {
			case "ACT":
				fmt.Fprintf(w, "%12.2f ns  ACT  bank=%s row=%d\n", cmd.AtNs, cmd.Bank, cmd.Row)
			case "PRE":
				fmt.Fprintf(w, "%12.2f ns  PRE  bank=%s\n", cmd.AtNs, cmd.Bank)
			default:
				fmt.Fprintf(w, "%12.2f ns  %-4s bank=%s col=%d\n", cmd.AtNs, cmd.Kind, cmd.Bank, cmd.Col)
			}
		}
	}
	stats, err := sys.StreamEnergy(context.Background(), req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dramsim: %v\n", err)
		os.Exit(1)
	}
	if w != nil {
		w.Flush()
	}

	tb := report.NewTable(fmt.Sprintf("dramsim: %d weights, %s mapping, %.3f V", *weights, *policy, *voltage),
		"metric", "value")
	tb.AddRow("accesses", stats.Accesses)
	tb.AddRow("row-buffer hits", stats.Hits)
	tb.AddRow("row-buffer misses", stats.Misses)
	tb.AddRow("row-buffer conflicts", stats.Conflicts)
	tb.AddRow("hit rate", report.Pct(stats.HitRate))
	tb.AddRow("ACT / PRE / RD / REF", fmt.Sprintf("%d / %d / %d / %d",
		stats.NACT, stats.NPRE, stats.NRD, stats.NREF))
	tb.AddRow("makespan", fmt.Sprintf("%.2f us", stats.MakespanNs/1000))
	tb.AddRow("bus utilization", report.Pct(stats.BusUtilization))
	tb.AddRow("energy: ACT", fmt.Sprintf("%.1f nJ", stats.Energy.ActNJ))
	tb.AddRow("energy: PRE", fmt.Sprintf("%.1f nJ", stats.Energy.PreNJ))
	tb.AddRow("energy: RD", fmt.Sprintf("%.1f nJ", stats.Energy.RdNJ))
	tb.AddRow("energy: REF", fmt.Sprintf("%.1f nJ", stats.Energy.RefNJ))
	tb.AddRow("energy: background", fmt.Sprintf("%.1f nJ", stats.Energy.BgNJ))
	tb.AddRow("energy: total", fmt.Sprintf("%.4f mJ", stats.Energy.TotalMJ()))
	tb.Render(os.Stdout)
}
