// Command dramsim is a standalone approximate-DRAM simulator: it places a
// weight image of the requested size with either mapping policy, replays
// the inference access stream through the memory controller at a chosen
// supply voltage, and prints the access census, command counts, timing,
// and the DRAMPower-style energy breakdown. With -trace it also dumps the
// command trace (time, command, bank, row/col), one line per command.
//
// Usage:
//
//	dramsim -weights 705600 -policy sparkxd -voltage 1.1 -berth 1e-4
//	dramsim -weights 313600 -policy baseline -trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"sparkxd/internal/core"
	"sparkxd/internal/dram"
	"sparkxd/internal/memctrl"
	"sparkxd/internal/report"
)

func main() {
	var (
		weights = flag.Int("weights", 784*900, "number of FP32 weights to stream")
		policy  = flag.String("policy", "baseline", "mapping policy: baseline or sparkxd")
		voltage = flag.Float64("voltage", 1.35, "DRAM supply voltage [V]")
		berth   = flag.Float64("berth", 1e-3, "max tolerable BER (sparkxd policy only)")
		trace   = flag.Bool("trace", false, "dump the DRAM command trace to stdout")
	)
	flag.Parse()

	f := core.NewFramework()
	var (
		layout interface {
			AccessStream() []dram.Coord
		}
		err error
	)
	switch *policy {
	case "baseline":
		layout, err = f.LayoutForWeights(*weights, nil)
	case "sparkxd":
		layout, _, _, err = f.MapWeightsAdaptive(*weights, *voltage, *berth)
	default:
		fmt.Fprintf(os.Stderr, "dramsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dramsim: %v\n", err)
		os.Exit(1)
	}

	ctl, err := memctrl.New(f.Geom, f.Circuit.Timing(*voltage))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dramsim: %v\n", err)
		os.Exit(1)
	}
	var w *bufio.Writer
	if *trace {
		w = bufio.NewWriter(os.Stdout)
		defer w.Flush()
		ctl.OnCommand = func(cmd dram.Command, atNs float64) {
			switch cmd.Kind {
			case dram.CmdACT:
				fmt.Fprintf(w, "%12.2f ns  ACT  bank=%v row=%d\n", atNs, cmd.Bank, cmd.Row)
			case dram.CmdPRE:
				fmt.Fprintf(w, "%12.2f ns  PRE  bank=%v\n", atNs, cmd.Bank)
			default:
				fmt.Fprintf(w, "%12.2f ns  %-4v bank=%v col=%d\n", atNs, cmd.Kind, cmd.Bank, cmd.Col)
			}
		}
	}
	stats := ctl.ReplayReads(layout.AccessStream())
	if w != nil {
		w.Flush()
	}

	b := f.Power.Energy(stats.Tally, *voltage)
	tb := report.NewTable(fmt.Sprintf("dramsim: %d weights, %s mapping, %.3f V", *weights, *policy, *voltage),
		"metric", "value")
	tb.AddRow("accesses", stats.Accesses())
	tb.AddRow("row-buffer hits", stats.Hits)
	tb.AddRow("row-buffer misses", stats.Misses)
	tb.AddRow("row-buffer conflicts", stats.Conflicts)
	tb.AddRow("hit rate", report.Pct(stats.HitRate()))
	tb.AddRow("ACT / PRE / RD / REF", fmt.Sprintf("%d / %d / %d / %d",
		stats.Tally.NACT, stats.Tally.NPRE, stats.Tally.NRD, stats.Tally.NREF))
	tb.AddRow("makespan", fmt.Sprintf("%.2f us", stats.TotalNs/1000))
	tb.AddRow("bus utilization", report.Pct(stats.BusUtilization()))
	tb.AddRow("energy: ACT", fmt.Sprintf("%.1f nJ", b.ActNJ))
	tb.AddRow("energy: PRE", fmt.Sprintf("%.1f nJ", b.PreNJ))
	tb.AddRow("energy: RD", fmt.Sprintf("%.1f nJ", b.RdNJ))
	tb.AddRow("energy: REF", fmt.Sprintf("%.1f nJ", b.RefNJ))
	tb.AddRow("energy: background", fmt.Sprintf("%.1f nJ", b.BgNJ))
	tb.AddRow("energy: total", fmt.Sprintf("%.4f mJ", b.TotalMJ()))
	tb.Render(os.Stdout)
}
