package sparkxd

// The extended scenario axes (stored-weight bitwidth, prune level, spike
// encoder) share one resolution rule across every layer: an omitted axis
// means "the configured default", and a spelled-out axis that equals the
// default is canonicalized back to omitted, so the two spellings produce
// byte-identical job IDs, scenario keys, and sweep artifacts.

import (
	"fmt"
	"strings"

	"sparkxd/internal/coding"
	"sparkxd/internal/quant"
)

// Encoder selects the spike encoder of a sweep's encoder axis.
type Encoder string

const (
	// EncoderRate is stochastic Poisson rate coding (the paper's default
	// and the encoder every network trains with).
	EncoderRate Encoder = "rate"
	// EncoderRateDet is deterministic evenly-spaced rate coding.
	EncoderRateDet Encoder = "rate-det"
	// EncoderTTFS is time-to-first-spike latency coding.
	EncoderTTFS Encoder = "ttfs"
	// EncoderRankOrder is rank-order coding.
	EncoderRankOrder Encoder = "rank-order"
	// EncoderPhase is phase (bit-plane) coding.
	EncoderPhase Encoder = "phase"
	// EncoderBurst is burst coding.
	EncoderBurst Encoder = "burst"
)

// EncoderNames enumerates the encoder names ParseEncoder accepts
// (aliases excluded).
func EncoderNames() []string {
	return []string{
		string(EncoderRate), string(EncoderRateDet), string(EncoderTTFS),
		string(EncoderRankOrder), string(EncoderPhase), string(EncoderBurst),
	}
}

// ParseEncoder maps a CLI-style name to an Encoder. Matching is
// case-insensitive, and the long-form names of internal/coding
// ("rate-poisson", "rate-deterministic", "time-to-first-spike") are
// accepted as aliases.
func ParseEncoder(name string) (Encoder, error) {
	switch canonName(name) {
	case string(EncoderRate), "poisson", "rate-poisson":
		return EncoderRate, nil
	case string(EncoderRateDet), "deterministic", "rate-deterministic":
		return EncoderRateDet, nil
	case string(EncoderTTFS), "time-to-first-spike":
		return EncoderTTFS, nil
	case string(EncoderRankOrder), "rankorder":
		return EncoderRankOrder, nil
	case string(EncoderPhase):
		return EncoderPhase, nil
	case string(EncoderBurst):
		return EncoderBurst, nil
	default:
		return "", fmt.Errorf("sparkxd: unknown encoder %q (valid: %s)", name, strings.Join(EncoderNames(), ", "))
	}
}

// coder constructs the encoder's internal/coding implementation with its
// default parameters.
func (e Encoder) coder() (coding.Encoder, error) {
	switch e {
	case EncoderRate:
		return coding.NewRate(), nil
	case EncoderRateDet:
		return coding.NewDeterministicRate(), nil
	case EncoderTTFS:
		return coding.TTFS{}, nil
	case EncoderRankOrder:
		return coding.NewRankOrder(), nil
	case EncoderPhase:
		return coding.Phase{}, nil
	case EncoderBurst:
		return coding.NewBurst(), nil
	default:
		return nil, fmt.Errorf("sparkxd: unknown encoder %q (valid: %s)", string(e), strings.Join(EncoderNames(), ", "))
	}
}

// BitwidthValues enumerates the stored-weight bitwidths ParseBitwidth
// accepts.
func BitwidthValues() []int { return []int{16, 32} }

// ParseBitwidth maps a sweep-axis bitwidth to its Quantization (16 =
// FP16, 32 = FP32). Fixed-point Q8.8 shares a bitwidth with FP16 and is
// reachable only through WithQuantization, never through the axis.
func ParseBitwidth(bits int) (Quantization, error) {
	switch bits {
	case 16:
		return FP16, nil
	case 32:
		return FP32, nil
	default:
		return 0, fmt.Errorf("sparkxd: unsupported bitwidth %d (valid: 16, 32)", bits)
	}
}

// ValidatePruneLevel reports whether level is a usable prune-axis value:
// a pruned weight fraction in [0, 1) (1 would zero every weight).
func ValidatePruneLevel(level float64) error {
	if level < 0 || level >= 1 {
		return fmt.Errorf("sparkxd: prune level %v outside [0, 1)", level)
	}
	return nil
}

// ErrorModelName is the stable scenario-vocabulary name of an EDEN error
// model as it appears in scenario keys and sweep artifacts
// ("model0-uniform", "model3-data-dependent", …) — the typed form of the
// report's error-model axis. It is distinct from ErrorModel's spec names
// ("uniform", …), which predate the artifacts and cannot change without
// breaking job identities.
type ErrorModelName string

// Model maps the scenario-vocabulary name back to its ErrorModel;
// spec-style names ("uniform") are accepted too, so old and new artifact
// spellings both resolve.
func (n ErrorModelName) Model() (ErrorModel, error) {
	switch canonName(string(n)) {
	case "model0-uniform":
		return ErrorModelUniform, nil
	case "model1-bitline":
		return ErrorModelBitline, nil
	case "model2-wordline":
		return ErrorModelWordline, nil
	case "model3-data-dependent":
		return ErrorModelDataDependent, nil
	}
	return ParseErrorModel(string(n))
}

// ScenarioName returns the error model's scenario-vocabulary name (the
// spelling used in scenario keys and sweep artifacts).
func (m ErrorModel) ScenarioName() (ErrorModelName, error) {
	k, err := m.kind()
	if err != nil {
		return "", fmt.Errorf("sparkxd: %w", err)
	}
	return ErrorModelName(k.String()), nil
}

// canonBitwidthAxis validates a bitwidth axis and canonicalizes it: an
// empty axis stays nil, and a single-element axis equal to the
// configured format (def) elides to nil — the spelled-out default and
// the omitted axis are the same grid.
func canonBitwidthAxis(list []int, def quant.Format) ([]int, error) {
	if len(list) == 0 {
		return nil, nil
	}
	out := make([]int, len(list))
	for i, b := range list {
		if _, err := ParseBitwidth(b); err != nil {
			return nil, err
		}
		out[i] = b
	}
	if len(out) == 1 {
		q, _ := ParseBitwidth(out[0])
		if f, err := q.format(); err == nil && f == def {
			return nil, nil
		}
	}
	return out, nil
}

// canonPruneAxis validates a prune axis and canonicalizes it (a lone 0
// elides to nil).
func canonPruneAxis(list []float64) ([]float64, error) {
	if len(list) == 0 {
		return nil, nil
	}
	out := make([]float64, len(list))
	for i, lv := range list {
		if err := ValidatePruneLevel(lv); err != nil {
			return nil, err
		}
		out[i] = lv
	}
	if len(out) == 1 && out[0] == 0 {
		return nil, nil
	}
	return out, nil
}

// canonEncoderAxis validates an encoder axis, canonicalizes names
// (case, aliases), and elides a lone default-encoder axis to nil.
func canonEncoderAxis(list []Encoder) ([]Encoder, error) {
	if len(list) == 0 {
		return nil, nil
	}
	out := make([]Encoder, len(list))
	for i, e := range list {
		parsed, err := ParseEncoder(string(e))
		if err != nil {
			return nil, err
		}
		out[i] = parsed
	}
	if len(out) == 1 && out[0] == EncoderRate {
		return nil, nil
	}
	return out, nil
}
