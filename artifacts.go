package sparkxd

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"sparkxd/internal/mapping"
	"sparkxd/internal/snn"
	"sparkxd/internal/store"
)

// TrainedModel is the persistable outcome of the training stages: a
// trained SNN (baseline or fault-aware improved), the configuration it
// was trained under, and the training observations later stages need.
// It round-trips losslessly through encoding/json, so a checkpoint can
// be saved after ImproveTolerance and reloaded to resume Map and
// EvaluateUnderErrors without retraining.
type TrainedModel struct {
	// Stage is "baseline" (error-free training only) or "improved"
	// (after Algorithm 1).
	Stage string
	// Dataset names the flavour the model was trained on.
	Dataset string
	// Neurons is the excitatory population size.
	Neurons int
	// Seed is the network seed the model was trained with.
	Seed uint64
	// TrainSamples/TestSamples are the sample budgets the model was
	// trained and measured under (the test budget anchors BaselineAcc).
	TrainSamples int
	TestSamples  int
	// BaselineAcc is the error-free accuracy of the baseline model
	// (acc0 of Algorithm 1; zero until ImproveTolerance measures it).
	BaselineAcc float64
	// BERth is the provisional maximum tolerable BER observed during
	// Algorithm 1 (refined by AnalyzeTolerance; zero for baseline models).
	BERth float64
	// Curve is the per-rate accuracy observed during Algorithm 1.
	Curve []RatePoint

	net *snn.Network
}

type trainedModelJSON struct {
	Stage        string          `json:"stage"`
	Dataset      string          `json:"dataset"`
	Neurons      int             `json:"neurons"`
	Seed         uint64          `json:"seed"`
	TrainSamples int             `json:"train_samples,omitempty"`
	TestSamples  int             `json:"test_samples,omitempty"`
	BaselineAcc  float64         `json:"baseline_acc"`
	BERth        float64         `json:"ber_th"`
	Curve        []RatePoint     `json:"curve,omitempty"`
	Checkpoint   *snn.Checkpoint `json:"checkpoint"`
}

// MarshalJSON implements json.Marshaler.
func (m *TrainedModel) MarshalJSON() ([]byte, error) {
	if m.net == nil {
		return nil, errors.New("sparkxd: cannot serialize a TrainedModel without a network")
	}
	cp, err := m.net.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("sparkxd: checkpoint: %w", err)
	}
	return json.Marshal(trainedModelJSON{
		Stage:        m.Stage,
		Dataset:      m.Dataset,
		Neurons:      m.Neurons,
		Seed:         m.Seed,
		TrainSamples: m.TrainSamples,
		TestSamples:  m.TestSamples,
		BaselineAcc:  m.BaselineAcc,
		BERth:        m.BERth,
		Curve:        m.Curve,
		Checkpoint:   cp,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *TrainedModel) UnmarshalJSON(b []byte) error {
	var raw trainedModelJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return fmt.Errorf("sparkxd: trained model: %w", err)
	}
	net, err := snn.FromCheckpoint(raw.Checkpoint)
	if err != nil {
		return fmt.Errorf("sparkxd: trained model: %w", err)
	}
	*m = TrainedModel{
		Stage:        raw.Stage,
		Dataset:      raw.Dataset,
		Neurons:      raw.Neurons,
		Seed:         raw.Seed,
		TrainSamples: raw.TrainSamples,
		TestSamples:  raw.TestSamples,
		BaselineAcc:  raw.BaselineAcc,
		BERth:        raw.BERth,
		Curve:        raw.Curve,
		net:          net,
	}
	return nil
}

// WeightCount returns the number of synaptic weights stored in DRAM.
func (m *TrainedModel) WeightCount() int {
	if m.net == nil {
		return 0
	}
	return m.net.WeightCount()
}

// ToleranceReport is the outcome of AnalyzeTolerance (Sec. IV-C): the
// maximum tolerable BER and the full tolerance curve of the model it
// analyzed.
type ToleranceReport struct {
	// BaselineAcc is the error-free accuracy the bound is anchored to.
	BaselineAcc float64 `json:"baseline_acc"`
	// AccBound is the tolerated accuracy drop.
	AccBound float64 `json:"acc_bound"`
	// BERth is the maximum tolerable bit error rate.
	BERth float64 `json:"ber_th"`
	// Curve is the (BER, accuracy) tolerance curve (Fig. 8).
	Curve []RatePoint `json:"curve"`
}

// Placement is the outcome of Map (Algorithm 2): which policy placed the
// weight image at which voltage under which threshold, plus the device
// profile it was derived from. The DRAM layout itself is recomputed
// deterministically from these fields on demand, so a Placement persists
// compactly and a reloaded Placement drives EvaluateUnderErrors and
// EnergyReport bit-identically.
type Placement struct {
	// Voltage is the supply voltage the device was characterized at.
	Voltage float64 `json:"voltage"`
	// RequestedBERth is the tolerance threshold Map was asked for.
	RequestedBERth float64 `json:"requested_ber_th"`
	// EffectiveBERth is the threshold actually used (MapAdaptive may
	// relax it until the image fits).
	EffectiveBERth float64 `json:"effective_ber_th"`
	// Policy is the mapping policy ("sparkxd" or "baseline").
	Policy Policy `json:"policy"`
	// WeightCount sizes the placed weight image.
	WeightCount int `json:"weight_count"`
	// Profile is the device error profile the safe set came from.
	Profile *DeviceProfile `json:"profile"`

	layout *mapping.Layout // lazily rebuilt after deserialization
}

type placementJSON Placement // strips the methods, keeps the JSON tags

// MarshalJSON implements json.Marshaler.
func (p *Placement) MarshalJSON() ([]byte, error) {
	return json.Marshal((*placementJSON)(p))
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Placement) UnmarshalJSON(b []byte) error {
	var raw placementJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return fmt.Errorf("sparkxd: placement: %w", err)
	}
	*p = Placement(raw)
	p.layout = nil
	return nil
}

// SafeSubarrayCount returns how many subarrays satisfy the effective
// threshold.
func (p *Placement) SafeSubarrayCount() int {
	if p.Profile == nil {
		return 0
	}
	return p.Profile.SafeCount(p.EffectiveBERth)
}

// Evaluation is the outcome of EvaluateUnderErrors: the improved model's
// accuracy when its weights stream through the placed approximate DRAM.
type Evaluation struct {
	Voltage float64 `json:"voltage"`
	// BERth is the effective tolerance threshold of the placement.
	BERth float64 `json:"ber_th"`
	// BaselineAcc is the error-free accuracy of the baseline model.
	BaselineAcc float64 `json:"baseline_acc"`
	// Accuracy is the accuracy under injected DRAM errors.
	Accuracy float64 `json:"accuracy"`
}

// EnergyPoint is one energy/performance measurement of a replayed
// inference pass.
type EnergyPoint struct {
	Voltage        float64 `json:"voltage"`
	Policy         Policy  `json:"policy"`
	TotalMJ        float64 `json:"total_mj"`
	HitRate        float64 `json:"hit_rate"`
	MakespanNs     float64 `json:"makespan_ns"`
	BusUtilization float64 `json:"bus_utilization"`
}

// EnergyReport compares DRAM energy of the baseline mapping at nominal
// voltage against the SparkXD placement at the reduced voltage (the
// Fig. 12 comparison).
type EnergyReport struct {
	Baseline EnergyPoint `json:"baseline"`
	SparkXD  EnergyPoint `json:"sparkxd"`
	// Savings is the fractional DRAM energy saving of SparkXD.
	Savings float64 `json:"savings"`
	// Speedup is baseline makespan / SparkXD makespan at matched
	// (nominal) timing — the pure mapping effect.
	Speedup float64 `json:"speedup"`
}

// Result bundles every artifact of a full pipeline run.
type Result struct {
	Baseline   *TrainedModel    `json:"baseline"`
	Improved   *TrainedModel    `json:"improved"`
	Tolerance  *ToleranceReport `json:"tolerance"`
	Placement  *Placement       `json:"placement"`
	Evaluation *Evaluation      `json:"evaluation"`
	Energy     *EnergyReport    `json:"energy"`
}

// Artifact kinds of the content-addressed store (the envelope's kind
// field and the prefix of every artifact key).
const (
	KindTrainedModel    = "trained-model"
	KindToleranceReport = "tolerance-report"
	KindPlacement       = "placement"
	KindEvaluation      = "evaluation"
	KindEnergyReport    = "energy-report"
	KindSweepReport     = "sweep-report"
	KindJobRecord       = "job-record"
	KindJobTrace        = "job-trace"
)

// The artifact store surface, re-exported from internal/store. An
// ArtifactKey is "<kind>/<sha256-of-canonical-json>"; every stored
// artifact lives in a typed ArtifactEnvelope {kind, schemaVersion,
// payload}. See DESIGN.md §8 for the key scheme.
type (
	ArtifactStore    = store.Store
	ArtifactKey      = store.Key
	ArtifactInfo     = store.Info
	ArtifactEnvelope = store.Envelope
)

// OpenStore opens an artifact store named by location: an http:// or
// https:// URL opens a remote store speaking the artifact wire protocol
// (see RemoteStore); anything else opens (creating if needed) a
// filesystem store rooted at that directory. Every -store/-artifacts/
// -resume flag accepting a directory therefore accepts a remote store
// URL too.
func OpenStore(location string) (ArtifactStore, error) {
	if IsStoreURL(location) {
		return RemoteStore(location)
	}
	st, err := store.NewFS(location)
	if err != nil {
		return nil, fmt.Errorf("sparkxd: %w", err)
	}
	return st, nil
}

// IsStoreURL reports whether a store location names a remote store
// (http:// or https://) rather than a local directory.
func IsStoreURL(location string) bool {
	return strings.HasPrefix(location, "http://") || strings.HasPrefix(location, "https://")
}

// RemoteStore opens an artifact store served over HTTP at baseURL —
// `sparkxd store serve` or any coordinator's /v1/artifacts endpoints.
// Reads re-verify content addresses end to end, writes are idempotent
// PUTs, and transient failures retry with jittered backoff.
func RemoteStore(baseURL string, opts ...store.HTTPOption) (ArtifactStore, error) {
	st, err := store.NewHTTP(baseURL, opts...)
	if err != nil {
		return nil, fmt.Errorf("sparkxd: %w", err)
	}
	return st, nil
}

// ReadThroughStore layers a local cache over a remote store: Gets served
// locally when possible, fetched remotely (and cached) otherwise, and
// Puts written through to the remote. Safe because artifacts are
// immutable content-addressed envelopes.
func ReadThroughStore(local, remote ArtifactStore) ArtifactStore {
	return store.NewReadThrough(local, remote)
}

// MemoryStore returns an in-memory artifact store (tests, ephemeral
// servers).
func MemoryStore() ArtifactStore { return store.NewMem() }

// ArtifactKind reports the store kind an artifact value is stored under.
func ArtifactKind(artifact any) (string, error) {
	switch artifact.(type) {
	case *TrainedModel:
		return KindTrainedModel, nil
	case *ToleranceReport:
		return KindToleranceReport, nil
	case *Placement:
		return KindPlacement, nil
	case *Evaluation:
		return KindEvaluation, nil
	case *EnergyReport:
		return KindEnergyReport, nil
	case *SweepReport:
		return KindSweepReport, nil
	case *JobRecord:
		return KindJobRecord, nil
	case *JobTrace:
		return KindJobTrace, nil
	default:
		return "", fmt.Errorf("sparkxd: %T is not a storable artifact", artifact)
	}
}

// PutArtifact stores a pipeline artifact under its content address and
// returns the key. Storing the same artifact value twice returns the
// same key.
func PutArtifact(st ArtifactStore, artifact any) (ArtifactKey, error) {
	kind, err := ArtifactKind(artifact)
	if err != nil {
		return "", err
	}
	key, err := st.Put(kind, artifact)
	if err != nil {
		return "", fmt.Errorf("sparkxd: %w", err)
	}
	return key, nil
}

// GetTrainedModel fetches a TrainedModel from the store by key.
func GetTrainedModel(st ArtifactStore, key ArtifactKey) (*TrainedModel, error) {
	return getArtifact[TrainedModel](st, key, KindTrainedModel)
}

// GetToleranceReport fetches a ToleranceReport from the store by key.
func GetToleranceReport(st ArtifactStore, key ArtifactKey) (*ToleranceReport, error) {
	return getArtifact[ToleranceReport](st, key, KindToleranceReport)
}

// GetPlacement fetches a Placement from the store by key.
func GetPlacement(st ArtifactStore, key ArtifactKey) (*Placement, error) {
	return getArtifact[Placement](st, key, KindPlacement)
}

// GetEvaluation fetches an Evaluation from the store by key.
func GetEvaluation(st ArtifactStore, key ArtifactKey) (*Evaluation, error) {
	return getArtifact[Evaluation](st, key, KindEvaluation)
}

// GetEnergyReport fetches an EnergyReport from the store by key.
func GetEnergyReport(st ArtifactStore, key ArtifactKey) (*EnergyReport, error) {
	return getArtifact[EnergyReport](st, key, KindEnergyReport)
}

// GetSweepReport fetches a SweepReport from the store by key.
func GetSweepReport(st ArtifactStore, key ArtifactKey) (*SweepReport, error) {
	return getArtifact[SweepReport](st, key, KindSweepReport)
}

// GetJobRecord fetches a JobRecord from the store by key.
func GetJobRecord(st ArtifactStore, key ArtifactKey) (*JobRecord, error) {
	return getArtifact[JobRecord](st, key, KindJobRecord)
}

// GetJobTrace fetches a JobTrace from the store by key.
func GetJobTrace(st ArtifactStore, key ArtifactKey) (*JobTrace, error) {
	return getArtifact[JobTrace](st, key, KindJobTrace)
}

// getArtifact fetches and decodes one artifact, translating store
// failures to the public sentinels: a missing key satisfies
// errors.Is(err, ErrMissingArtifact), an untrustworthy envelope
// errors.Is(err, ErrCorruptArtifact).
func getArtifact[T any](st ArtifactStore, key ArtifactKey, wantKind string) (*T, error) {
	env, err := st.Get(key)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotFound):
			return nil, fmt.Errorf("%w: %w", ErrMissingArtifact, err)
		case errors.Is(err, store.ErrCorrupt):
			return nil, fmt.Errorf("%w: %w", ErrCorruptArtifact, err)
		}
		return nil, fmt.Errorf("sparkxd: %w", err)
	}
	var v T
	if err := env.Decode(wantKind, &v); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptArtifact, err)
	}
	return &v, nil
}

// SaveArtifact writes a pipeline artifact to path as an indented JSON
// envelope ({kind, schemaVersion, payload}).
//
// Deprecated: use PutArtifact with an ArtifactStore for content-addressed
// persistence; SaveArtifact remains for single-file workflows.
func SaveArtifact(path string, artifact any) error {
	kind, err := ArtifactKind(artifact)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(artifact)
	if err != nil {
		return fmt.Errorf("sparkxd: save %s: %w", path, err)
	}
	b, err := json.MarshalIndent(ArtifactEnvelope{
		Kind:          kind,
		SchemaVersion: store.SchemaVersion,
		Payload:       payload,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("sparkxd: save %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("sparkxd: save artifact: %w", err)
	}
	return nil
}

// LoadTrainedModel reads a TrainedModel artifact written by SaveArtifact.
//
// Deprecated: use GetTrainedModel with an ArtifactStore.
func LoadTrainedModel(path string) (*TrainedModel, error) {
	return loadArtifact[TrainedModel](path, KindTrainedModel)
}

// LoadPlacement reads a Placement artifact written by SaveArtifact.
//
// Deprecated: use GetPlacement with an ArtifactStore.
func LoadPlacement(path string) (*Placement, error) {
	return loadArtifact[Placement](path, KindPlacement)
}

// LoadToleranceReport reads a ToleranceReport artifact.
//
// Deprecated: use GetToleranceReport with an ArtifactStore.
func LoadToleranceReport(path string) (*ToleranceReport, error) {
	return loadArtifact[ToleranceReport](path, KindToleranceReport)
}

// LoadSweepReport reads a SweepReport artifact written by SaveArtifact,
// e.g. to extend or re-render a persisted sweep without re-evaluating.
//
// Deprecated: use GetSweepReport with an ArtifactStore.
func LoadSweepReport(path string) (*SweepReport, error) {
	return loadArtifact[SweepReport](path, KindSweepReport)
}

// loadArtifact reads one envelope file. A missing file satisfies both
// errors.Is(err, ErrMissingArtifact) and errors.Is(err, os.ErrNotExist);
// truncated JSON or an envelope of the wrong kind satisfies
// errors.Is(err, ErrCorruptArtifact) instead of yielding a zero-valued
// artifact.
func loadArtifact[T any](path, wantKind string) (*T, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: load %s: %w", ErrMissingArtifact, path, err)
		}
		return nil, fmt.Errorf("sparkxd: load artifact: %w", err)
	}
	var env ArtifactEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("%w: load %s: %w", ErrCorruptArtifact, path, err)
	}
	if env.Kind == "" && env.Payload == nil {
		// Valid JSON but not an envelope at all (e.g. a pre-envelope
		// artifact file or an unrelated document).
		return nil, fmt.Errorf("%w: load %s: not an artifact envelope (missing kind)", ErrCorruptArtifact, path)
	}
	var v T
	if err := env.Decode(wantKind, &v); err != nil {
		return nil, fmt.Errorf("%w: load %s: %w", ErrCorruptArtifact, path, err)
	}
	return &v, nil
}
