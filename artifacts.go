package sparkxd

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"sparkxd/internal/mapping"
	"sparkxd/internal/snn"
)

// TrainedModel is the persistable outcome of the training stages: a
// trained SNN (baseline or fault-aware improved), the configuration it
// was trained under, and the training observations later stages need.
// It round-trips losslessly through encoding/json, so a checkpoint can
// be saved after ImproveTolerance and reloaded to resume Map and
// EvaluateUnderErrors without retraining.
type TrainedModel struct {
	// Stage is "baseline" (error-free training only) or "improved"
	// (after Algorithm 1).
	Stage string
	// Dataset names the flavour the model was trained on.
	Dataset string
	// Neurons is the excitatory population size.
	Neurons int
	// Seed is the network seed the model was trained with.
	Seed uint64
	// TrainSamples/TestSamples are the sample budgets the model was
	// trained and measured under (the test budget anchors BaselineAcc).
	TrainSamples int
	TestSamples  int
	// BaselineAcc is the error-free accuracy of the baseline model
	// (acc0 of Algorithm 1; zero until ImproveTolerance measures it).
	BaselineAcc float64
	// BERth is the provisional maximum tolerable BER observed during
	// Algorithm 1 (refined by AnalyzeTolerance; zero for baseline models).
	BERth float64
	// Curve is the per-rate accuracy observed during Algorithm 1.
	Curve []RatePoint

	net *snn.Network
}

type trainedModelJSON struct {
	Stage        string          `json:"stage"`
	Dataset      string          `json:"dataset"`
	Neurons      int             `json:"neurons"`
	Seed         uint64          `json:"seed"`
	TrainSamples int             `json:"train_samples,omitempty"`
	TestSamples  int             `json:"test_samples,omitempty"`
	BaselineAcc  float64         `json:"baseline_acc"`
	BERth        float64         `json:"ber_th"`
	Curve        []RatePoint     `json:"curve,omitempty"`
	Checkpoint   *snn.Checkpoint `json:"checkpoint"`
}

// MarshalJSON implements json.Marshaler.
func (m *TrainedModel) MarshalJSON() ([]byte, error) {
	if m.net == nil {
		return nil, errors.New("sparkxd: cannot serialize a TrainedModel without a network")
	}
	cp, err := m.net.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("sparkxd: checkpoint: %w", err)
	}
	return json.Marshal(trainedModelJSON{
		Stage:        m.Stage,
		Dataset:      m.Dataset,
		Neurons:      m.Neurons,
		Seed:         m.Seed,
		TrainSamples: m.TrainSamples,
		TestSamples:  m.TestSamples,
		BaselineAcc:  m.BaselineAcc,
		BERth:        m.BERth,
		Curve:        m.Curve,
		Checkpoint:   cp,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *TrainedModel) UnmarshalJSON(b []byte) error {
	var raw trainedModelJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return fmt.Errorf("sparkxd: trained model: %w", err)
	}
	net, err := snn.FromCheckpoint(raw.Checkpoint)
	if err != nil {
		return fmt.Errorf("sparkxd: trained model: %w", err)
	}
	*m = TrainedModel{
		Stage:        raw.Stage,
		Dataset:      raw.Dataset,
		Neurons:      raw.Neurons,
		Seed:         raw.Seed,
		TrainSamples: raw.TrainSamples,
		TestSamples:  raw.TestSamples,
		BaselineAcc:  raw.BaselineAcc,
		BERth:        raw.BERth,
		Curve:        raw.Curve,
		net:          net,
	}
	return nil
}

// WeightCount returns the number of synaptic weights stored in DRAM.
func (m *TrainedModel) WeightCount() int {
	if m.net == nil {
		return 0
	}
	return m.net.WeightCount()
}

// ToleranceReport is the outcome of AnalyzeTolerance (Sec. IV-C): the
// maximum tolerable BER and the full tolerance curve of the model it
// analyzed.
type ToleranceReport struct {
	// BaselineAcc is the error-free accuracy the bound is anchored to.
	BaselineAcc float64 `json:"baseline_acc"`
	// AccBound is the tolerated accuracy drop.
	AccBound float64 `json:"acc_bound"`
	// BERth is the maximum tolerable bit error rate.
	BERth float64 `json:"ber_th"`
	// Curve is the (BER, accuracy) tolerance curve (Fig. 8).
	Curve []RatePoint `json:"curve"`
}

// Placement is the outcome of Map (Algorithm 2): which policy placed the
// weight image at which voltage under which threshold, plus the device
// profile it was derived from. The DRAM layout itself is recomputed
// deterministically from these fields on demand, so a Placement persists
// compactly and a reloaded Placement drives EvaluateUnderErrors and
// EnergyReport bit-identically.
type Placement struct {
	// Voltage is the supply voltage the device was characterized at.
	Voltage float64 `json:"voltage"`
	// RequestedBERth is the tolerance threshold Map was asked for.
	RequestedBERth float64 `json:"requested_ber_th"`
	// EffectiveBERth is the threshold actually used (MapAdaptive may
	// relax it until the image fits).
	EffectiveBERth float64 `json:"effective_ber_th"`
	// Policy is the mapping policy ("sparkxd" or "baseline").
	Policy Policy `json:"policy"`
	// WeightCount sizes the placed weight image.
	WeightCount int `json:"weight_count"`
	// Profile is the device error profile the safe set came from.
	Profile *DeviceProfile `json:"profile"`

	layout *mapping.Layout // lazily rebuilt after deserialization
}

type placementJSON Placement // strips the methods, keeps the JSON tags

// MarshalJSON implements json.Marshaler.
func (p *Placement) MarshalJSON() ([]byte, error) {
	return json.Marshal((*placementJSON)(p))
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Placement) UnmarshalJSON(b []byte) error {
	var raw placementJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return fmt.Errorf("sparkxd: placement: %w", err)
	}
	*p = Placement(raw)
	p.layout = nil
	return nil
}

// SafeSubarrayCount returns how many subarrays satisfy the effective
// threshold.
func (p *Placement) SafeSubarrayCount() int {
	if p.Profile == nil {
		return 0
	}
	return p.Profile.SafeCount(p.EffectiveBERth)
}

// Evaluation is the outcome of EvaluateUnderErrors: the improved model's
// accuracy when its weights stream through the placed approximate DRAM.
type Evaluation struct {
	Voltage float64 `json:"voltage"`
	// BERth is the effective tolerance threshold of the placement.
	BERth float64 `json:"ber_th"`
	// BaselineAcc is the error-free accuracy of the baseline model.
	BaselineAcc float64 `json:"baseline_acc"`
	// Accuracy is the accuracy under injected DRAM errors.
	Accuracy float64 `json:"accuracy"`
}

// EnergyPoint is one energy/performance measurement of a replayed
// inference pass.
type EnergyPoint struct {
	Voltage        float64 `json:"voltage"`
	Policy         Policy  `json:"policy"`
	TotalMJ        float64 `json:"total_mj"`
	HitRate        float64 `json:"hit_rate"`
	MakespanNs     float64 `json:"makespan_ns"`
	BusUtilization float64 `json:"bus_utilization"`
}

// EnergyReport compares DRAM energy of the baseline mapping at nominal
// voltage against the SparkXD placement at the reduced voltage (the
// Fig. 12 comparison).
type EnergyReport struct {
	Baseline EnergyPoint `json:"baseline"`
	SparkXD  EnergyPoint `json:"sparkxd"`
	// Savings is the fractional DRAM energy saving of SparkXD.
	Savings float64 `json:"savings"`
	// Speedup is baseline makespan / SparkXD makespan at matched
	// (nominal) timing — the pure mapping effect.
	Speedup float64 `json:"speedup"`
}

// Result bundles every artifact of a full pipeline run.
type Result struct {
	Baseline   *TrainedModel    `json:"baseline"`
	Improved   *TrainedModel    `json:"improved"`
	Tolerance  *ToleranceReport `json:"tolerance"`
	Placement  *Placement       `json:"placement"`
	Evaluation *Evaluation      `json:"evaluation"`
	Energy     *EnergyReport    `json:"energy"`
}

// SaveArtifact writes any pipeline artifact to path as indented JSON.
func SaveArtifact(path string, artifact any) error {
	b, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return fmt.Errorf("sparkxd: save %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("sparkxd: save artifact: %w", err)
	}
	return nil
}

// LoadTrainedModel reads a TrainedModel artifact written by SaveArtifact.
func LoadTrainedModel(path string) (*TrainedModel, error) {
	return loadArtifact[TrainedModel](path)
}

// LoadPlacement reads a Placement artifact written by SaveArtifact.
func LoadPlacement(path string) (*Placement, error) {
	return loadArtifact[Placement](path)
}

// LoadToleranceReport reads a ToleranceReport artifact.
func LoadToleranceReport(path string) (*ToleranceReport, error) {
	return loadArtifact[ToleranceReport](path)
}

// LoadSweepReport reads a SweepReport artifact written by SaveArtifact,
// e.g. to extend or re-render a persisted sweep without re-evaluating.
func LoadSweepReport(path string) (*SweepReport, error) {
	return loadArtifact[SweepReport](path)
}

func loadArtifact[T any](path string) (*T, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sparkxd: load artifact: %w", err)
	}
	var v T
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("sparkxd: load %s: %w", path, err)
	}
	return &v, nil
}
