package sparkxd

import (
	"context"
	"fmt"

	"sparkxd/internal/engine"
	"sparkxd/internal/errmodel"
)

// SweepSpec declares a scenario grid for Pipeline.Sweep as the
// cross-product of its axes. Zero-valued axes fall back to the system's
// configuration: the configured voltage, the configured BER schedule,
// the configured error model, and the SparkXD mapping policy.
type SweepSpec struct {
	// Voltages are the approximate-DRAM supply voltages to evaluate at.
	Voltages []float64 `json:"voltages,omitempty"`
	// BERs are the tolerance thresholds (BERth candidates) each mapping
	// is derived under.
	BERs []float64 `json:"bers,omitempty"`
	// ErrorModels are the EDEN error models to inject with.
	ErrorModels []ErrorModel `json:"error_models,omitempty"`
	// Policies are the mapping policies to place the weights with.
	Policies []Policy `json:"policies,omitempty"`
	// Bitwidths are stored-weight bitwidths to sweep (16 = FP16, 32 =
	// FP32); empty means the configured quantization only. A spelled-out
	// axis equal to the configured default is canonicalized back to
	// omitted, so both spellings share one job identity.
	Bitwidths []int `json:"bitwidths,omitempty"`
	// PruneLevels are pruned weight fractions (by magnitude) to sweep,
	// each in [0, 1); empty means unpruned only.
	PruneLevels []float64 `json:"prune_levels,omitempty"`
	// Encoders are the spike encoders to evaluate under; empty means the
	// network's own (rate) encoder only. Evaluation reads trains encoded
	// per axis point; training always uses the network's encoder.
	Encoders []Encoder `json:"encoders,omitempty"`
	// Workers bounds the evaluation pool (<= 0: the WithSweepWorkers
	// option, then GOMAXPROCS). The report is byte-identical for any
	// value.
	Workers int `json:"-"`
}

// SweepPoint is the outcome of one scenario of a sweep.
type SweepPoint struct {
	// Key is the scenario's canonical identity (the report sort key and
	// the scenario's random-stream derivation path).
	Key     string  `json:"key"`
	Voltage float64 `json:"voltage"`
	// BER is the requested tolerance threshold of the scenario.
	BER float64 `json:"ber"`
	// ErrorModel names the EDEN error model injected (scenario
	// vocabulary, e.g. "model0-uniform").
	ErrorModel ErrorModelName `json:"error_model"`
	Policy     Policy         `json:"policy"`
	// Bitwidth, PruneLevel, and Encoder echo the scenario's extended-axis
	// values; the zero value means the configured default (the field is
	// then omitted, matching pre-N-axis artifacts).
	Bitwidth   int     `json:"bitwidth,omitempty"`
	PruneLevel float64 `json:"prune_level,omitempty"`
	Encoder    Encoder `json:"encoder,omitempty"`
	// EffectiveBERth is the threshold actually used (the sparkxd policy
	// relaxes the requested one until the image fits).
	EffectiveBERth float64 `json:"effective_ber_th"`
	// SafeSubarrays counts subarrays at or below the effective threshold.
	SafeSubarrays int `json:"safe_subarrays"`
	// FlippedBits is the number of bit errors injected at this point.
	FlippedBits int64 `json:"flipped_bits"`
	// Accuracy is the model's accuracy under the scenario's errors.
	Accuracy float64 `json:"accuracy"`
	// EnergyMJ and HitRate describe one weight-streaming inference pass
	// over the scenario's layout at the scenario voltage.
	EnergyMJ float64 `json:"energy_mj"`
	HitRate  float64 `json:"hit_rate"`
}

// SweepReport is the artifact of Pipeline.Sweep: one point per scenario,
// sorted by scenario key. It round-trips losslessly through
// encoding/json (SaveArtifact / LoadSweepReport) and is byte-identical
// for any worker count.
type SweepReport struct {
	// Dataset/Neurons identify the model the sweep evaluated.
	Dataset string `json:"dataset"`
	Neurons int    `json:"neurons"`
	// BaselineAcc is the model's error-free accuracy (zero if never
	// measured).
	BaselineAcc float64 `json:"baseline_acc"`
	// The resolved grid axes. Every axis echo is typed; error models use
	// the scenario vocabulary ("model0-uniform"), the stable artifact
	// spelling since the first sweep release. The extended axes are
	// omitted when the grid left them at the configured default, so
	// 4-axis artifacts are byte-identical to pre-N-axis ones.
	Voltages    []float64        `json:"voltages"`
	BERs        []float64        `json:"bers"`
	ErrorModels []ErrorModelName `json:"error_models"`
	Policies    []Policy         `json:"policies"`
	Bitwidths   []int            `json:"bitwidths,omitempty"`
	PruneLevels []float64        `json:"prune_levels,omitempty"`
	Encoders    []Encoder        `json:"encoders,omitempty"`
	// Points holds one record per scenario, sorted by Key.
	Points []SweepPoint `json:"points"`
}

// Sweep evaluates the model under every scenario of the grid — the
// batched, parallel generalization of EvaluateUnderErrors. Scenarios fan
// out over a work-stealing pool; device profiles are derived once per
// (voltage, error model) point and shared, and every scenario draws its
// injection randomness from a stream derived from its scenario key, so
// the report is byte-identical whether Workers is 1 or N. Evaluation is
// paired: every scenario uses the spike trains of the same evaluation
// seed family as EvaluateUnderErrors.
//
// Sweep needs a trained model (run Train/ImproveTolerance or assign one)
// but no prior Map: each scenario derives its own placement.
func (p *Pipeline) Sweep(ctx context.Context, spec SweepSpec) (*SweepReport, error) {
	m := p.model()
	if m == nil || m.net == nil {
		return nil, missingArtifact("Sweep", "a trained model", "run Train/ImproveTolerance or assign Pipeline.Improved")
	}
	_, test, err := p.data()
	if err != nil {
		return nil, wrapStage("sweep", err)
	}
	rs, err := p.sys.resolveSweep(spec)
	if err != nil {
		return nil, err
	}
	espec := rs.espec

	scenarios := len(espec.Scenarios())
	p.sys.notify(Event{Stage: "sweep", Phase: "start", Epochs: scenarios,
		Message: fmt.Sprintf("%d scenarios on %d workers", scenarios, espec.Workers)})
	results, err := p.sys.sweepEngine().Run(ctx, m.net, test, espec)
	if err != nil {
		return nil, wrapStage("sweep", err)
	}

	report := &SweepReport{
		Dataset:     m.Dataset,
		Neurons:     m.Neurons,
		BaselineAcc: m.BaselineAcc,
		Voltages:    espec.Voltages,
		BERs:        espec.BERs,
		Policies:    append([]Policy(nil), resolvePolicies(spec.Policies)...),
		Bitwidths:   rs.bitwidths,
		PruneLevels: rs.pruneLevels,
		Encoders:    rs.encoders,
		Points:      make([]SweepPoint, len(results)),
	}
	for _, k := range rs.kinds {
		report.ErrorModels = append(report.ErrorModels, ErrorModelName(k.String()))
	}
	for i, r := range results {
		report.Points[i] = SweepPoint{
			Key:            r.Key,
			Voltage:        r.Voltage,
			BER:            r.BER,
			ErrorModel:     ErrorModelName(r.Kind),
			Policy:         Policy(r.Policy),
			Bitwidth:       r.Bitwidth,
			PruneLevel:     r.PruneLevel,
			Encoder:        Encoder(r.Encoder),
			EffectiveBERth: r.EffectiveBERth,
			SafeSubarrays:  r.SafeSubarrays,
			FlippedBits:    r.FlippedBits,
			Accuracy:       r.Accuracy,
			EnergyMJ:       r.EnergyMJ,
			HitRate:        r.HitRate,
		}
	}
	p.sys.notify(Event{Stage: "sweep", Phase: "done", Epochs: scenarios})
	return report, nil
}

// ValidateSweep reports whether the spec — resolved against the system
// defaults — describes a runnable grid. It needs no trained model, so
// front-ends can reject a malformed grid before spending time training;
// failures satisfy errors.Is(err, ErrInvalidSweep).
func (s *System) ValidateSweep(spec SweepSpec) error {
	_, err := s.resolveSweep(spec)
	return err
}

// resolvedSweep is a public SweepSpec resolved against the system
// defaults: the engine grid plus the canonical public axis echoes the
// report carries.
type resolvedSweep struct {
	espec engine.Spec
	kinds []errmodel.Kind
	// Canonicalized extended axes (nil when left at the default).
	bitwidths   []int
	pruneLevels []float64
	encoders    []Encoder
}

// resolveSweep resolves a public SweepSpec against the system defaults
// and translates it to the internal engine's grid, validating every
// axis. Extended-axis values equal to the configured default map to the
// engine's elided zero value, so their scenario keys — and therefore RNG
// streams and artifacts — match the axis-less spelling exactly.
func (s *System) resolveSweep(spec SweepSpec) (resolvedSweep, error) {
	cfg := &s.cfg
	voltages := spec.Voltages
	if len(voltages) == 0 {
		voltages = []float64{cfg.voltage}
	}
	bers := spec.BERs
	if len(bers) == 0 {
		bers = append([]float64(nil), cfg.rates...)
	}
	var kinds []errmodel.Kind
	if len(spec.ErrorModels) == 0 {
		kinds = []errmodel.Kind{cfg.errKind}
	} else {
		for _, m := range spec.ErrorModels {
			k, err := m.kind()
			if err != nil {
				return resolvedSweep{}, invalidSweep(err)
			}
			kinds = append(kinds, k)
		}
	}
	var policies []string
	for _, pol := range resolvePolicies(spec.Policies) {
		switch pol {
		case PolicyBaseline:
			policies = append(policies, engine.PolicyBaseline)
		case PolicySparkXD:
			policies = append(policies, engine.PolicySparkXD)
		default:
			return resolvedSweep{}, invalidSweep(fmt.Errorf("unknown policy %q", pol))
		}
	}

	bitAxis, err := canonBitwidthAxis(spec.Bitwidths, cfg.format)
	if err != nil {
		return resolvedSweep{}, invalidSweep(err)
	}
	pruneAxis, err := canonPruneAxis(spec.PruneLevels)
	if err != nil {
		return resolvedSweep{}, invalidSweep(err)
	}
	encAxis, err := canonEncoderAxis(spec.Encoders)
	if err != nil {
		return resolvedSweep{}, invalidSweep(err)
	}
	// Per-value elision: within a multi-value axis, the value equal to
	// the configured default becomes the engine's zero value and is
	// elided from scenario keys.
	var engBits []int
	for _, b := range bitAxis {
		q, _ := ParseBitwidth(b)
		if f, err := q.format(); err == nil && f == cfg.format {
			engBits = append(engBits, 0)
		} else {
			engBits = append(engBits, b)
		}
	}
	var engEncs []engine.EncoderAxis
	for _, e := range encAxis {
		if e == EncoderRate {
			engEncs = append(engEncs, engine.EncoderAxis{})
			continue
		}
		c, err := e.coder()
		if err != nil {
			return resolvedSweep{}, invalidSweep(err)
		}
		engEncs = append(engEncs, engine.EncoderAxis{Name: string(e), Coder: c})
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = cfg.sweepWorkers
	}
	espec := engine.Spec{
		Voltages:    append([]float64(nil), voltages...),
		BERs:        append([]float64(nil), bers...),
		Kinds:       kinds,
		Policies:    policies,
		Bitwidths:   engBits,
		PruneLevels: append([]float64(nil), pruneAxis...),
		Encoders:    engEncs,
		// The seed family matches EvaluateUnderErrors (trainSeed+2 roots
		// injection, trainSeed+3 drives paired spike encoding), so sweep
		// accuracies are comparable with the single-scenario stage.
		Seed:     cfg.trainSeed + 2,
		EvalSeed: cfg.trainSeed + 3,
		Workers:  workers,
	}
	if err := espec.Validate(); err != nil {
		return resolvedSweep{}, invalidSweep(err)
	}
	return resolvedSweep{
		espec:       espec,
		kinds:       kinds,
		bitwidths:   bitAxis,
		pruneLevels: pruneAxis,
		encoders:    encAxis,
	}, nil
}

// resolvePolicies applies the default mapping-policy axis.
func resolvePolicies(ps []Policy) []Policy {
	if len(ps) == 0 {
		return []Policy{PolicySparkXD}
	}
	return ps
}
