# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs
# the same gates the workflow runs, so a green `make ci` means a green CI.

GO ?= go

.PHONY: build test race bench bench-record bench-check vet fmt-check shard-smoke sweep-smoke serve-smoke fleet-smoke federation-smoke loadgen-smoke pprof-smoke examples-smoke lint vuln ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick-mode benchmark smoke run: every benchmark executes exactly one
# iteration end to end. This only proves the benchmarks still run; real
# measurement is bench-record / bench-check below.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Measure the hot kernels with fixed iteration counts (-count=3,
# min-of-runs) and rewrite the committed baseline BENCH_kernel.json.
# Run on a quiet machine when a PR intentionally changes kernel perf,
# then commit the diff.
bench-record:
	./scripts/bench-record.sh

# Same measurement, gated against the committed baseline: fails if any
# tracked benchmark's ns/op regressed more than 25% (override with
# BENCH_TOLERANCE=<fraction>).
bench-check:
	./scripts/bench-check.sh

# Exercise the scheduler's shard matrix the same way the CI does.
shard-smoke: build
	$(GO) run ./cmd/experiments run --workers 4 --shard 1/2 --json > /dev/null
	$(GO) run ./cmd/experiments run --workers 4 --shard 2/2 --json > /dev/null

# Scenario-sweep engine smoke: a tiny multi-axis grid on 2 workers,
# cross-checked byte-identical against the sequential (workers=1) run.
sweep-smoke: build
	./scripts/sweep-smoke.sh

# Job-service smoke: start `sparkxd serve` on a random port, submit a
# tiny sweep twice through the Go client (same deterministic job ID),
# poll to completion, and `cmp` the fetched artifact payload against the
# in-process `sparkxd sweep` output.
serve-smoke: build
	./scripts/serve-smoke.sh

# Distributed-fleet smoke: coordinator + two workers, one killed -9
# mid-job (lease expiry requeues it), result `cmp`-identical to the
# in-process sweep; then a coordinator restart on the same store serves
# the resubmission from the persisted job record without re-executing.
fleet-smoke: build
	./scripts/fleet-smoke.sh

# Federation smoke: a `sparkxd store serve` shared store + two sharded
# coordinators + two workers; a mixed batch submitted through one
# coordinator (the CLI follows 421 misdirects), one coordinator killed
# -9 mid-queue and replaced (queued jobs restored from durable records),
# every artifact `cmp`-identical to the in-process sweep.
federation-smoke: build
	./scripts/federation-smoke.sh

# Observability/admission smoke: coordinator with tight per-submitter
# rate limiting + two workers with /metrics endpoints, driven by
# `sparkxd loadgen`; asserts a clean v1 report (0 failed, 429s retried
# to completion) and nonzero lease/latency series on /metrics.
loadgen-smoke: build
	./scripts/loadgen-smoke.sh

# Diagnostics smoke: every serving binary's -debug-addr listener must
# serve the pprof index, a heap profile, and /debug/vars; the
# coordinator's stderr must be structured JSON keyed by job ID; and
# `sparkxd version` must agree with /v1/healthz.
pprof-smoke: build
	./scripts/pprof-smoke.sh

# Run every example and both CLIs end to end on tiny budgets, including
# the persist-then-resume artifact round-trip of `sparkxd single`.
examples-smoke: build
	$(GO) run ./examples/quickstart -tiny
	$(GO) run ./examples/faultaware -tiny
	$(GO) run ./examples/mapping
	$(GO) run ./examples/voltagesweep
	$(GO) run ./cmd/sparkxd single -neurons 40 -train 60 -test 30 -epochs 1 -artifacts /tmp/sparkxd-arts -quiet
	$(GO) run ./cmd/sparkxd single -neurons 40 -train 60 -test 30 -epochs 1 -resume /tmp/sparkxd-arts -quiet
	$(GO) run ./cmd/dramsim -weights 78400 -policy sparkxd -voltage 1.1

# Static analysis / vulnerability scan; both need their tools on PATH
# (go install honnef.co/go/tools/cmd/staticcheck@v0.4.7,
#  go install golang.org/x/vuln/cmd/govulncheck@latest).
lint:
	staticcheck ./...

vuln:
	govulncheck ./...

ci: build vet fmt-check race bench examples-smoke sweep-smoke serve-smoke fleet-smoke federation-smoke loadgen-smoke pprof-smoke
