# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs
# the same gates the workflow runs, so a green `make ci` means a green CI.

GO ?= go

.PHONY: build test race bench vet fmt-check shard-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick-mode benchmark smoke run: every per-figure benchmark executes
# exactly one iteration end to end.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Exercise the scheduler's shard matrix the same way the CI does.
shard-smoke: build
	$(GO) run ./cmd/experiments run --workers 4 --shard 1/2 --json > /dev/null
	$(GO) run ./cmd/experiments run --workers 4 --shard 2/2 --json > /dev/null

ci: build vet fmt-check race bench
