// Cross-module integration tests: each test exercises a complete path
// through several packages, asserting the invariants the SparkXD pipeline
// depends on end to end.
package sparkxd_test

import (
	"bytes"
	"math"
	"testing"

	"sparkxd/internal/core"
	"sparkxd/internal/dataset"
	"sparkxd/internal/dram"
	"sparkxd/internal/errmodel"
	"sparkxd/internal/experiments"
	"sparkxd/internal/mapping"
	"sparkxd/internal/memctrl"
	"sparkxd/internal/quant"
	"sparkxd/internal/rng"
	"sparkxd/internal/snn"
	"sparkxd/internal/trace"
	"sparkxd/internal/voltscale"
)

// The storage loop: weights -> bit image -> mapping -> injection at BER 0
// -> weights must be the exact identity across every mapping policy.
func TestIntegrationLosslessStorageLoop(t *testing.T) {
	f := core.NewFramework()
	net, err := snn.New(snn.DefaultConfig(60), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	w := net.WeightsFlat()
	zero, err := errmodel.UniformProfile(f.Geom, 0, f.DeviceSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, safe := range [][]bool{nil, mapping.AllSafe(f.Geom)} {
		layout, err := f.LayoutFor(net, safe)
		if err != nil {
			t.Fatal(err)
		}
		out, flips := f.CorruptWeights(w, layout, zero, rng.New(7))
		if flips != 0 {
			t.Fatalf("%s: zero-BER injection flipped %d bits", layout.Policy, flips)
		}
		for i := range w {
			if out[i] != w[i] {
				t.Fatalf("%s: weight %d corrupted without errors", layout.Policy, i)
			}
		}
	}
}

// Energy computed from an archived command trace must agree with the live
// controller across mapping policies and voltages.
func TestIntegrationTraceEnergyAgreesWithLive(t *testing.T) {
	f := core.NewFramework()
	for _, v := range []float64{voltscale.VNominal, voltscale.V1025} {
		layout, _, _, err := f.MapWeightsAdaptive(784*100, v, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		tm := f.Circuit.Timing(v)
		ctl, err := memctrl.New(f.Geom, tm)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tw := trace.NewWriter(&buf)
		ctl.OnCommand = tw.Hook(f.Geom, tm.TCK)
		live := ctl.ReplayReads(layout.AccessStream())
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		entries, err := trace.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		replayed := trace.Tally(entries, tm.TCK)
		eLive := f.Power.Energy(live.Tally, v).TotalNJ()
		eTrace := f.Power.Energy(replayed, v).TotalNJ()
		if math.Abs(eLive-eTrace)/eLive > 0.05 {
			t.Errorf("v=%.3f: trace energy %.0f nJ vs live %.0f nJ", v, eTrace, eLive)
		}
	}
}

// A full quick-mode experiment run must be reproducible: two independent
// runners with the same seed produce identical curve sets.
func TestIntegrationDeterministicExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("training determinism check skipped in -short mode")
	}
	opts := experiments.BenchOptions()
	a := experiments.NewRunner(opts)
	b := experiments.NewRunner(opts)
	ca, err := a.CurveSetPublic(50, dataset.MNISTLike)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CurveSetPublic(50, dataset.MNISTLike)
	if err != nil {
		t.Fatal(err)
	}
	if ca.BaselineAcc != cb.BaselineAcc || ca.BERth != cb.BERth {
		t.Fatalf("runs diverged: %.4f/%.0e vs %.4f/%.0e",
			ca.BaselineAcc, ca.BERth, cb.BaselineAcc, cb.BERth)
	}
	for i := range ca.BERs {
		if ca.Improved[i] != cb.Improved[i] || ca.BaselineApprox[i] != cb.BaselineApprox[i] {
			t.Fatalf("curve point %d diverged", i)
		}
	}
}

// Failure injection: the pipeline must degrade gracefully, not corrupt
// state, when the device cannot satisfy the safety constraint.
func TestIntegrationInsufficientSafeCapacity(t *testing.T) {
	f := core.NewFramework()
	// A threshold no subarray satisfies at 1.025 V forces the adaptive
	// mapper to relax; the direct mapper must return the typed error.
	profile, err := f.ProfileAt(voltscale.V1025)
	if err != nil {
		t.Fatal(err)
	}
	strict := profile.SafeSubarrays(1e-15)
	nSafe := 0
	for _, s := range strict {
		if s {
			nSafe++
		}
	}
	if nSafe != 0 {
		t.Skipf("profile unexpectedly has %d ultra-safe subarrays", nSafe)
	}
	if _, err := f.LayoutForWeights(784*100, strict); err == nil {
		t.Fatal("mapping into zero safe subarrays must fail")
	}
	layout, _, effTh, err := f.MapWeightsAdaptive(784*100, voltscale.V1025, 1e-15)
	if err != nil {
		t.Fatalf("adaptive mapping must relax and succeed: %v", err)
	}
	if effTh <= 1e-15 {
		t.Fatal("adaptive mapping must report the relaxed threshold")
	}
	if err := layout.Validate(); err != nil {
		t.Fatal(err)
	}
}

// MSB corruption (the paper's Sec. VI-A label-2 observation): flipping the
// exponent MSB of weights must change them drastically, and the SNN's
// on-load sanitization must bound the damage.
func TestIntegrationMSBFlipsBoundedBySanitization(t *testing.T) {
	net, err := snn.New(snn.DefaultConfig(40), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	w := net.WeightsFlat()
	img := make([]byte, quant.FP32.ImageSize(len(w), 0))
	if err := quant.Serialize(w, quant.FP32, img); err != nil {
		t.Fatal(err)
	}
	// Flip the exponent MSB (bit 30) of the first 100 weights.
	for i := 0; i < 100; i++ {
		quant.FlipBit(img, int64(i*32+30))
	}
	out := make([]float32, len(w))
	if err := quant.Deserialize(img, quant.FP32, out); err != nil {
		t.Fatal(err)
	}
	blownUp := 0
	for i := 0; i < 100; i++ {
		if math.Abs(float64(out[i])) > 1e10 || out[i] == 0 {
			blownUp++
		}
	}
	if blownUp < 50 {
		t.Fatalf("only %d/100 exponent-MSB flips changed magnitude drastically", blownUp)
	}
	if err := net.SetWeightsFlat(out); err != nil {
		t.Fatal(err)
	}
	limit := snn.LoadClampFactor * net.Cfg.WMax
	for i, v := range net.W.Data {
		if v < -limit || v > limit || math.IsNaN(float64(v)) {
			t.Fatalf("weight %d = %v escaped sanitization", i, v)
		}
	}
}

// The end-to-end voltage story: at every reduced voltage the SparkXD
// layout's energy is below baseline-at-nominal, and monotone in voltage.
func TestIntegrationEnergyMonotoneAcrossVoltages(t *testing.T) {
	f := core.NewFramework()
	base, err := f.LayoutForWeights(784*400, nil)
	if err != nil {
		t.Fatal(err)
	}
	eBase, err := f.EvaluateEnergy(base, voltscale.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	prev := eBase.TotalMJ()
	for _, v := range voltscale.ReducedVoltages() {
		layout, _, _, err := f.MapWeightsAdaptive(784*400, v, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		e, err := f.EvaluateEnergy(layout, v)
		if err != nil {
			t.Fatal(err)
		}
		if e.TotalMJ() >= prev {
			t.Fatalf("energy at %.3fV (%.4f mJ) not below previous (%.4f mJ)",
				v, e.TotalMJ(), prev)
		}
		prev = e.TotalMJ()
	}
}

// dram geometry + mapping + controller agreement: every access of any
// layout must be inside the geometry and the controller census must add up.
func TestIntegrationCensusAddsUp(t *testing.T) {
	f := core.NewFramework()
	layout, _, _, err := f.MapWeightsAdaptive(784*200, voltscale.V1100, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := memctrl.New(f.Geom, dram.NominalTiming())
	if err != nil {
		t.Fatal(err)
	}
	stats := ctl.ReplayReads(layout.AccessStream())
	if stats.Accesses() != int64(layout.Units()) {
		t.Fatalf("census %d != stream length %d", stats.Accesses(), layout.Units())
	}
	if stats.Tally.NRD != stats.Accesses() {
		t.Fatal("every read access must issue exactly one RD")
	}
	if stats.Tally.NACT < stats.Misses+stats.Conflicts {
		t.Fatal("every miss/conflict must issue an ACT")
	}
}
